//! SLO-tiered answer path: the acceptance tests for tier selection.
//!
//! A wide-join workload (60 facts, 30 derivations) is served under three
//! latency budgets and must land on three different tiers, each recorded in
//! the response: loose → exact (circuit store), medium → learned (model
//! pipeline), tight → sampled (stratified estimator). Exact-tier scores are
//! pinned bit-identical to the plain Shapley engine; sampled responses are
//! reproducible (shape-seeded); a warm store flips a tight budget back to
//! exact; and the tier tag survives the TCP wire.

use ls_circuit::CircuitStore;
use ls_core::{save_model, LearnShapleyModel, Tokenizer};
use ls_nn::EncoderConfig;
use ls_provenance::Dnf;
use ls_relational::{ColType, Database, FactId, Monomial, OutputTuple, TableSchema, Value};
use ls_serve::{
    ModelBundle, RankRequest, RankResponse, ServeConfig, Server, TcpRankClient, TcpServer, Tier,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const MAX_LEN: usize = 48;

/// Budgets calibrated against `SloPolicy::default()` for the wide shape
/// below (60 players, 30 clauses): exact ≈ 3.2 ms, learned ≈ 0.53 ms.
const LOOSE: Duration = Duration::from_millis(100);
const MEDIUM: Duration = Duration::from_millis(1);
const TIGHT: Duration = Duration::from_micros(100);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ls-tiered-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Two tables of 32 facts each: enough for a 60-player wide-join lineage
/// and a non-trivial relation stratification for the sampled tier.
fn wide_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "orders",
        &[("id", ColType::Int), ("item", ColType::Str)],
    ));
    db.create_table(TableSchema::new(
        "parts",
        &[("id", ColType::Int), ("name", ColType::Str)],
    ));
    for i in 0..32i64 {
        db.insert(
            "orders",
            vec![Value::Int(i), Value::Str(format!("item {i}"))],
        );
    }
    for i in 0..32i64 {
        db.insert(
            "parts",
            vec![Value::Int(i), Value::Str(format!("part {i}"))],
        );
    }
    db
}

fn fixture_bundle() -> Arc<ModelBundle> {
    let db = wide_db();
    let corpus = [
        "SELECT item FROM orders JOIN parts ON orders.id = parts.id",
        "orders parts item part id 0 1 2 3 4 5 6 7",
    ];
    let tokenizer = Tokenizer::build(corpus.iter().copied(), 600);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        MAX_LEN,
    ));
    let dir = tmp_dir("model");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, db, MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

/// A wide-join request: 30 two-fact derivations pairing order i with part
/// i (facts 0..30 and 32..62), 60 distinct players total.
fn wide_request(slo: Option<Duration>) -> RankRequest {
    let derivations: Vec<Monomial> = (0..30u32)
        .map(|i| Monomial::from_facts(vec![FactId(i), FactId(32 + i)]))
        .collect();
    let lineage: Vec<FactId> = derivations
        .iter()
        .flat_map(|m| m.facts().to_vec())
        .collect();
    RankRequest {
        query_sql: "SELECT item FROM orders JOIN parts ON orders.id = parts.id".into(),
        tuple: OutputTuple {
            values: vec![Value::Str("item 0".into())],
            derivations,
        },
        lineage,
        deadline: None,
        slo,
    }
}

/// A structurally different lineage shape (a 31-fact chain: clause i =
/// {i, i+1}) that no pairing request warms: canonicalization maps every
/// disjoint pairing to one shared shape, so a *cold* tight-budget probe
/// needs a genuinely different clause structure, not just renamed facts.
fn chain_request(slo: Option<Duration>) -> RankRequest {
    let derivations: Vec<Monomial> = (0..30u32)
        .map(|i| Monomial::from_facts(vec![FactId(i), FactId(i + 1)]))
        .collect();
    RankRequest {
        query_sql: "SELECT item FROM orders JOIN parts ON orders.id = parts.id".into(),
        tuple: OutputTuple {
            values: vec![Value::Str("item 1".into())],
            derivations,
        },
        lineage: (0..31).map(FactId).collect(),
        deadline: None,
        slo,
    }
}

fn store_server(bundle: Arc<ModelBundle>, tag: &str) -> (Server, PathBuf) {
    let dir = tmp_dir(tag);
    let store = Arc::new(CircuitStore::open(&dir, 32).expect("store"));
    let server = Server::start_with_store(
        bundle,
        ServeConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        },
        store,
    );
    (server, dir)
}

/// The acceptance criterion: on the same wide-join request, tight vs loose
/// budgets demonstrably pick different tiers and each response records the
/// tier that answered it.
#[test]
fn budgets_select_three_distinct_tiers() {
    let bundle = fixture_bundle();
    let (server, dir) = store_server(bundle, "three-tiers");
    let handle = server.handle();

    // Medium goes first: once the loose request compiles and scores this
    // shape, cached scores make exact fit *any* budget (tested below).
    let medium = handle.rank(wide_request(Some(MEDIUM))).expect("medium");
    assert_eq!(
        medium.tier,
        Some(Tier::Learned),
        "medium budget must ride the model pipeline"
    );

    let loose = handle.rank(wide_request(Some(LOOSE))).expect("loose");
    assert_eq!(loose.tier, Some(Tier::Exact), "loose budget must go exact");

    let tight = handle.rank(wide_request(Some(TIGHT))).expect("tight");
    // The store is warm after the loose request compiled + scored this
    // shape, so re-probe flips even the tight budget to exact; use a fresh
    // shape (different pairing) to exercise the cold tight path.
    assert_eq!(tight.tier, Some(Tier::Exact), "warm store upgrades tight");

    let sampled = handle.rank(chain_request(Some(TIGHT))).expect("sampled");
    assert_eq!(
        sampled.tier,
        Some(Tier::Sampled),
        "cold tight budget must sample"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exact-tier responses are the ground truth: bit-identical to the plain
/// Shapley engine evaluated on the request's provenance.
#[test]
fn exact_tier_matches_plain_shapley_bitwise() {
    let bundle = fixture_bundle();
    let (server, dir) = store_server(bundle, "exact-bits");
    let handle = server.handle();

    let req = wide_request(Some(LOOSE));
    let dnf = Dnf::from_monomials(req.tuple.derivations.clone());
    let expected = ls_shapley::shapley_values(&dnf);

    let resp = handle.rank(req.clone()).expect("exact");
    assert_eq!(resp.tier, Some(Tier::Exact));
    assert_eq!(resp.scores.len(), req.lineage.len());
    for (f, got) in req.lineage.iter().zip(&resp.scores) {
        let want = expected.get(f).copied().unwrap_or(0.0);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "fact {f:?} diverges from the exact engine"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sampled responses are reproducible: the estimator is seeded by the
/// canonical lineage shape, so identical requests answer identically.
#[test]
fn sampled_tier_is_deterministic_per_request() {
    let bundle = fixture_bundle();
    let (server, dir) = store_server(bundle, "sampled-det");
    let handle = server.handle();

    let a = handle.rank(wide_request(Some(TIGHT))).expect("first");
    let b = handle.rank(wide_request(Some(TIGHT))).expect("second");
    assert_eq!(a.tier, Some(Tier::Sampled));
    assert_eq!(b.tier, Some(Tier::Sampled));
    assert_eq!(a.ranking, b.ranking);
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.to_bits(), y.to_bits(), "sampled replay not bit-identical");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Requests with no SLO (and servers with no store) keep the legacy path:
/// the model pipeline answers and tags itself as the learned tier.
#[test]
fn no_slo_or_no_store_rides_the_learned_pipeline() {
    let bundle = fixture_bundle();

    let (server, dir) = store_server(bundle.clone(), "no-slo");
    let resp = server.handle().rank(wide_request(None)).expect("no slo");
    assert_eq!(resp.tier, Some(Tier::Learned));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::start(bundle, ServeConfig::default());
    let resp = server
        .handle()
        .rank(wide_request(Some(TIGHT)))
        .expect("no store");
    assert_eq!(
        resp.tier,
        Some(Tier::Learned),
        "storeless servers ignore slo"
    );
    server.shutdown();
}

/// The tier tag, SLO budget, and derivations all survive the framed-JSON
/// wire: a TCP client gets the same tiers the in-process path picks.
#[test]
fn tier_survives_the_tcp_wire() {
    let bundle = fixture_bundle();
    let (server, dir) = store_server(bundle, "tcp");
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("tcp server");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("connect");

    let loose: RankResponse = client.rank(&wide_request(Some(LOOSE))).expect("loose");
    assert_eq!(loose.tier, Some(Tier::Exact));

    // A fresh clause structure so the warm store doesn't upgrade the tight
    // budget (renamed facts alone share the canonical shape).
    let sampled: RankResponse = client.rank(&chain_request(Some(TIGHT))).expect("tight");
    assert_eq!(sampled.tier, Some(Tier::Sampled));

    let learned: RankResponse = client.rank(&wide_request(None)).expect("legacy");
    assert_eq!(learned.tier, Some(Tier::Learned));

    tcp.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
