//! Zero-downtime snapshot hot-swap, and the serve-side online-learning
//! engine end to end.
//!
//! The contract under test: [`ls_serve::ServeHandle::swap_model`] may land
//! at any moment, under concurrent load, and
//!
//! * **zero requests drop** — every rank call admitted before, during, or
//!   after a swap returns `Ok`;
//! * **no response mixes snapshots** — each is bit-identical to the serial
//!   answer of *one* of the snapshots (whichever one scored it);
//! * **the cache never replays a retired snapshot** — once the swap
//!   returns, every response matches the new snapshot.

use ls_core::{
    save_model, FeedbackRecord, LearnShapleyModel, OnlineConfig, OnlineTrainer, Tokenizer,
};
use ls_nn::EncoderConfig;
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::{
    ModelBundle, OnlineOptions, RankRequest, ServeConfig, ServeError, Server, TcpRankClient,
    TcpServer,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_LEN: usize = 48;

fn fixture_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[("title", ColType::Str), ("year", ColType::Int)],
    ));
    let titles = [
        "Memento", "Dune", "Arrival", "Heat", "Alien", "Solaris", "Gattaca", "Brazil",
    ];
    for (i, t) in titles.iter().enumerate() {
        db.insert(
            "movies",
            vec![Value::Str(t.to_string()), Value::Int(1980 + i as i64 * 4)],
        );
    }
    db
}

fn fixture_tokenizer() -> Tokenizer {
    let corpus = [
        "SELECT title FROM movies WHERE year > 1990",
        "movies Memento Dune Arrival Heat Alien Solaris Gattaca Brazil",
    ];
    Tokenizer::build(corpus.iter().copied(), 600)
}

fn fixture_model(tokenizer: &Tokenizer, seed: u64) -> LearnShapleyModel {
    LearnShapleyModel::new(EncoderConfig {
        seed,
        ..EncoderConfig::small_ablation(tokenizer.vocab_size(), MAX_LEN)
    })
}

/// A serving bundle whose weights are seeded by `seed` — distinct seeds give
/// distinguishable scores, which is what lets the assertions below tell the
/// snapshots apart.
fn fixture_bundle(seed: u64) -> Arc<ModelBundle> {
    let tokenizer = fixture_tokenizer();
    let mut model = fixture_model(&tokenizer, seed);
    let dir = tmp_dir(&format!("bundle-{seed}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, fixture_db(), MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ls-hotswap-{tag}-{}", std::process::id()))
}

fn requests(db: &Database) -> Vec<RankRequest> {
    let n = db.fact_count() as u32;
    (0..6u32)
        .map(|i| RankRequest {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("Title {i}")), Value::Int(i as i64)],
                derivations: Vec::new(),
            },
            lineage: (0..5).map(|j| FactId((i * 3 + j * 2) % n)).collect(),
            deadline: None,
            slo: None,
        })
        .collect()
}

/// The serial model path's scores for `req`, as raw f64 bit patterns.
fn serial_bits(bundle: &ModelBundle, req: &RankRequest) -> Vec<u64> {
    let scores = ls_core::predict_scores(
        &bundle.model,
        &bundle.tokenizer,
        &bundle.db,
        &req.query_sql,
        &req.tuple,
        &req.lineage,
        bundle.max_len,
    );
    req.lineage.iter().map(|f| scores[f].to_bits()).collect()
}

#[test]
fn concurrent_swaps_drop_nothing_and_never_mix_snapshots() {
    let a = fixture_bundle(21);
    let b = fixture_bundle(22);
    let reqs = requests(&a.db);
    let answers_a: Vec<Vec<u64>> = reqs.iter().map(|r| serial_bits(&a, r)).collect();
    let answers_b: Vec<Vec<u64>> = reqs.iter().map(|r| serial_bits(&b, r)).collect();
    // The seeds must actually disagree, or "never mixes" is vacuous.
    assert_ne!(answers_a, answers_b, "fixture snapshots are identical");

    let server = Server::start(
        a.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    let clients: Vec<_> = (0..4)
        .map(|t| {
            let handle = handle.clone();
            let reqs = reqs.clone();
            let answers_a = answers_a.clone();
            let answers_b = answers_b.clone();
            std::thread::spawn(move || {
                for i in 0..150 {
                    let which = (t + i) % reqs.len();
                    let resp = handle
                        .rank(reqs[which].clone())
                        .expect("no request may drop during a swap");
                    let bits: Vec<u64> = resp.scores.iter().map(|s| s.to_bits()).collect();
                    assert!(
                        bits == answers_a[which] || bits == answers_b[which],
                        "response for request {which} matches neither snapshot \
                         (mixed or corrupted scores): {bits:?}"
                    );
                }
            })
        })
        .collect();

    // Swap back and forth under load; end on B.
    let mut swaps = 0;
    for round in 0..20 {
        std::thread::sleep(Duration::from_millis(2));
        let next = if round % 2 == 0 { a.clone() } else { b.clone() };
        let generation = handle.swap_model(next);
        swaps += 1;
        assert_eq!(generation, swaps, "generations must count every swap");
    }
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(handle.model_generation(), swaps);

    // Quiesced on B (the 20th swap): every response — cached or fresh — must
    // now be B's, including keys the cache held for A before the swaps.
    for (i, req) in reqs.iter().enumerate() {
        for _ in 0..2 {
            let resp = handle.rank(req.clone()).expect("post-swap rank");
            let bits: Vec<u64> = resp.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(
                bits, answers_b[i],
                "request {i} answered by a retired snapshot after the swap"
            );
        }
    }
    server.shutdown();
}

#[test]
fn swap_clears_the_cache_atomically() {
    let a = fixture_bundle(31);
    let b = fixture_bundle(32);
    let reqs = requests(&a.db);
    let server = Server::start(a.clone(), ServeConfig::default());
    let handle = server.handle();

    // Prime the cache with A's answers.
    for req in &reqs {
        let _ = handle.rank(req.clone()).expect("prime");
    }
    let cached = handle.rank(reqs[0].clone()).expect("cached");
    assert!(cached.cached, "second identical request must hit the cache");

    handle.swap_model(b.clone());
    let fresh = handle.rank(reqs[0].clone()).expect("post-swap");
    assert!(
        !fresh.cached,
        "the swap must clear cached entries of the old snapshot"
    );
    let want = serial_bits(&b, &reqs[0]);
    let bits: Vec<u64> = fresh.scores.iter().map(|s| s.to_bits()).collect();
    assert_eq!(bits, want, "post-swap answer must come from the new model");
    server.shutdown();
}

/// Feedback appended through the handle flows WAL → trainer → published
/// snapshot → hot-swap, and the published state survives a server restart.
#[test]
fn online_engine_trains_publishes_swaps_and_recovers() {
    let bundle = fixture_bundle(41);
    let wal_dir = tmp_dir("online-wal");
    let snap_dir = tmp_dir("online-snap");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
    let online_cfg = OnlineConfig {
        batch: 4,
        lr: 1e-3,
        max_len: MAX_LEN,
        seed: 9,
    };
    let opts = OnlineOptions {
        wal_dir: wal_dir.clone(),
        snapshot_dir: snap_dir.clone(),
        publish_every: 4,
        poll: Duration::from_millis(5),
    };
    let feedback: Vec<FeedbackRecord> = (0..8)
        .map(|i| FeedbackRecord {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple_fact: format!("(Title {i}) | movies({i}, 'Memento', 2000)"),
            target: 0.25 * (i % 4) as f32,
        })
        .collect();

    let server = Server::start(bundle.clone(), ServeConfig::default());
    let handle = server.handle();
    // Feedback before enable_online fails typed, not silently.
    assert!(matches!(
        handle.feedback(&feedback[0]),
        Err(ServeError::BadRequest(_))
    ));

    let trainer = OnlineTrainer::new(
        fixture_model(&bundle.tokenizer, 41),
        fixture_tokenizer(),
        online_cfg.clone(),
    );
    let online = server.enable_online(trainer, opts.clone()).expect("enable");
    assert!(
        server
            .enable_online(
                OnlineTrainer::new(
                    fixture_model(&bundle.tokenizer, 41),
                    fixture_tokenizer(),
                    online_cfg.clone(),
                ),
                opts.clone(),
            )
            .is_err(),
        "second enable_online must fail"
    );

    for rec in &feedback {
        handle.feedback(rec).expect("append feedback");
    }
    assert_eq!(online.appended(), feedback.len() as u64);

    // 8 records / batch 4 / publish_every 4 → at least one publish + swap.
    let deadline = Instant::now() + Duration::from_secs(30);
    while online.published_generation() == 0 {
        assert!(Instant::now() < deadline, "trainer never published");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(online.trained() >= 4);
    assert!(handle.model_generation() >= 1, "publish must hot-swap");
    let state = handle.state_json();
    assert!(
        state.contains("\"online\":{\"appended\":"),
        "state must expose online progress: {state}"
    );

    // Serving still answers on the swapped-in snapshot.
    let req = requests(&bundle.db).remove(0);
    handle.rank(req).expect("rank after online swap");

    // Feedback over TCP lands in the same WAL.
    let tcp = TcpServer::start(handle.clone(), "127.0.0.1:0").expect("tcp");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("client");
    let lsn = client.feedback(&feedback[0]).expect("tcp feedback");
    assert_eq!(
        lsn,
        feedback.len() as u64,
        "LSNs are dense across transports"
    );
    tcp.stop();

    let generation_before = online.published_generation();
    server.shutdown();

    // Restart against the same directories: the published snapshot is
    // swapped back in at enable time and the trainer resumes its watermark.
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let trainer = OnlineTrainer::new(
        fixture_model(&bundle.tokenizer, 41),
        fixture_tokenizer(),
        online_cfg,
    );
    let online = server.enable_online(trainer, opts).expect("re-enable");
    assert_eq!(online.published_generation(), generation_before);
    assert!(
        server.handle().model_generation() >= 1,
        "recovery must swap the published snapshot in"
    );
    assert!(
        online.trained() >= 4,
        "trainer checkpoint must restore the consumption watermark"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

/// Perf probe backing the EXPERIMENTS.md hot-swap table (not an
/// assertion). Measures `swap_model` call latency and rank latency with
/// swaps landing every ~2ms under 4-client closed-loop load. Run with:
///
/// ```bash
/// cargo test -p ls-serve --release --test hotswap -- --ignored --nocapture
/// ```
#[test]
#[ignore = "perf probe, run with --ignored --nocapture"]
fn hot_swap_latency_probe() {
    let a = fixture_bundle(51);
    let b = fixture_bundle(52);
    let reqs = requests(&a.db);
    let server = Server::start(
        a.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let results = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|t| {
                let handle = handle.clone();
                let reqs = reqs.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = t;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let req = reqs[i % reqs.len()].clone();
                        i += 1;
                        let t0 = Instant::now();
                        handle.rank(req).expect("rank under swaps");
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();

        let mut swap_lat = Vec::with_capacity(200);
        for round in 0..200 {
            std::thread::sleep(Duration::from_millis(2));
            let next = if round % 2 == 0 { b.clone() } else { a.clone() };
            let t0 = Instant::now();
            handle.swap_model(next);
            swap_lat.push(t0.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let rank_lat: Vec<Duration> = clients
            .into_iter()
            .flat_map(|c| c.join().expect("client"))
            .collect();
        (swap_lat, rank_lat)
    });
    let (mut swap_lat, mut rank_lat) = results;
    for (label, lat) in [
        ("swap_model call", &mut swap_lat),
        ("rank during swaps", &mut rank_lat),
    ] {
        lat.sort();
        let pct = |p: f64| lat[((lat.len() as f64 - 1.0) * p).round() as usize];
        println!(
            "{label:<24} n {:>6}  p50 {:>9.3?}  p99 {:>9.3?}  max {:>9.3?}",
            lat.len(),
            pct(0.50),
            pct(0.99),
            lat.last().copied().unwrap_or(Duration::ZERO),
        );
    }
    server.shutdown();
}
