//! Observability integration tests: end-to-end trace propagation over TCP,
//! per-stage latency attribution, tracing bit-identity, admin introspection
//! frames on the live rank port, and the flight recorder under fault
//! injection.
//!
//! The obs level, JSONL sink, and flight recorder are process-global, so
//! every test here serializes on one mutex and restores `Level::Off` when
//! it leaves.

use ls_core::{save_model, LearnShapleyModel, Tokenizer};
use ls_fault::{FaultKind, FaultPlan, FaultRule, FaultSpec};
use ls_nn::EncoderConfig;
use ls_obs::{Json, Level};
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::{
    AdminCommand, ModelBundle, RankRequest, RankResponse, ServeConfig, ServeError, Server,
    TcpRankClient, TcpServer,
};
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

const MAX_LEN: usize = 48;

/// One lock for the whole file: obs state is process-global.
fn env_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_env() -> std::sync::MutexGuard<'static, ()> {
    env_lock().lock().unwrap_or_else(|e| e.into_inner())
}

/// In-memory JSONL sink whose bytes stay readable after the sink takes the
/// boxed writer (same idiom as crates/obs/tests/obs.rs).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn fixture_bundle() -> Arc<ModelBundle> {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[("title", ColType::Str), ("year", ColType::Int)],
    ));
    let titles = [
        "Memento", "Dune", "Arrival", "Heat", "Alien", "Solaris", "Gattaca", "Brazil", "Akira",
        "Contact", "Moon", "Primer",
    ];
    for (i, t) in titles.iter().enumerate() {
        db.insert(
            "movies",
            vec![Value::Str(t.to_string()), Value::Int(1980 + i as i64 * 3)],
        );
    }
    let corpus = [
        "SELECT title FROM movies WHERE year > 1990",
        "movies Memento Dune Arrival Heat Alien Solaris Gattaca Brazil Akira Contact Moon Primer",
    ];
    let tokenizer = Tokenizer::build(corpus.iter().copied(), 600);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        MAX_LEN,
    ));
    let dir = std::env::temp_dir().join(format!(
        "ls-serve-trace-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, db, MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

fn requests(bundle: &ModelBundle) -> Vec<RankRequest> {
    let n = bundle.db.fact_count() as u32;
    (0..6u32)
        .map(|i| RankRequest {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("Title {i}")), Value::Int(i as i64)],
                derivations: Vec::new(),
            },
            // Stride 2 over 12 facts: 5 distinct ids for any offset `i`.
            lineage: (0..5).map(|j| FactId((i + j * 2) % n)).collect(),
            deadline: None,
            slo: None,
        })
        .collect()
}

/// The trace id a client mints must cross the wire and tag the server-side
/// span records — including spans closed on worker-pool threads, which is
/// exactly the cross-thread parenting the explicit `TraceContext` handoff
/// exists to fix.
#[test]
fn client_trace_id_reaches_server_side_jsonl_over_tcp() {
    let _guard = lock_env();
    ls_obs::set_level(Level::Summary);
    let buf = SharedBuf::default();
    ls_obs::init_jsonl_writer(Box::new(buf.clone()));

    let bundle = fixture_bundle();
    let mut reqs = requests(&bundle);
    let server = Server::start(
        bundle,
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("connect");

    let ctx = ls_obs::TraceContext::root();
    let hex = format!("{:016x}", ctx.trace_id);
    {
        let _attached = ctx.attach();
        let req = reqs.remove(0);
        let resp = client.rank(&req).expect("rank over tcp");
        assert_eq!(resp.ranking.len(), req.lineage.len());
        let stages = resp.stages.expect("traced response carries stages");
        assert!(stages.total_us > 0, "server-side latency is measured");
    }

    tcp.stop();
    server.shutdown();
    ls_obs::flush();
    drop(ls_obs::take_jsonl_writer());
    ls_obs::set_level(Level::Off);

    let text = buf.contents();
    let spans_with_trace: Vec<&str> = text
        .lines()
        .filter(|l| {
            let Ok(r) = ls_obs::parse_json(l) else {
                return false;
            };
            r.get("t").and_then(Json::as_str) == Some("span")
                && r.get("trace").and_then(Json::as_str) == Some(hex.as_str())
        })
        .collect();
    let has = |name: &str| {
        spans_with_trace.iter().any(|l| {
            ls_obs::parse_json(l)
                .ok()
                .and_then(|r| r.get("name").and_then(Json::as_str).map(String::from))
                .as_deref()
                == Some(name)
        })
    };
    assert!(
        has("serve.tcp.request"),
        "connection-thread span tagged with the client trace: {text}"
    );
    assert!(
        has("serve.worker.chunk"),
        "worker-pool span tagged with the client trace: {text}"
    );
}

/// The stage breakdown is a partition of the server-side latency: the five
/// stages sum exactly to `total_us`, in-process and after a wire round trip.
#[test]
fn stage_breakdown_partitions_total_latency() {
    let _guard = lock_env();
    ls_obs::set_level(Level::Summary);
    let bundle = fixture_bundle();
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let handle = server.handle();
    let check = |resp: &RankResponse| {
        let b = resp.stages.expect("traced response has stages");
        assert_eq!(
            b.probe_us + b.queue_us + b.batch_us + b.score_us + b.other_us,
            b.total_us,
            "stages must partition the total: {b:?}"
        );
    };
    for req in requests(&bundle) {
        let ctx = ls_obs::TraceContext::root();
        let _attached = ctx.attach();
        check(&handle.rank(req).expect("rank"));
    }

    // Same invariant after encode/decode over a live TCP connection (the
    // client mints its own trace because the obs level is on).
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("connect");
    for req in requests(&bundle) {
        check(&client.rank(&req).expect("rank over tcp"));
    }
    tcp.stop();
    server.shutdown();
    ls_obs::set_level(Level::Off);
}

/// Tracing is observation, not participation: with the cache off, responses
/// with tracing attached are bit-identical to untraced ones.
#[test]
fn tracing_does_not_perturb_scores() {
    let _guard = lock_env();
    let bundle = fixture_bundle();
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let handle = server.handle();
    let reqs = requests(&bundle);

    ls_obs::set_level(Level::Off);
    let plain: Vec<RankResponse> = reqs
        .iter()
        .map(|r| handle.rank(r.clone()).expect("untraced rank"))
        .collect();
    assert!(plain.iter().all(|r| r.stages.is_none()));

    ls_obs::set_level(Level::Summary);
    let traced: Vec<RankResponse> = reqs
        .iter()
        .map(|r| {
            let ctx = ls_obs::TraceContext::root();
            let _attached = ctx.attach();
            handle.rank(r.clone()).expect("traced rank")
        })
        .collect();
    server.shutdown();
    ls_obs::set_level(Level::Off);

    for (a, b) in plain.iter().zip(&traced) {
        assert!(b.stages.is_some(), "traced responses carry stages");
        assert_eq!(a.ranking, b.ranking, "ranking unchanged by tracing");
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.to_bits(), y.to_bits(), "scores bit-identical");
        }
    }
}

/// The rank port answers admin frames: metrics (with stage histograms),
/// operational state, active traces, and the flight-recorder ring.
#[test]
fn admin_frames_introspect_a_live_server() {
    let _guard = lock_env();
    ls_obs::set_level(Level::Summary);
    let bundle = fixture_bundle();
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 8,
            ..Default::default()
        },
    );
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("connect");
    for req in requests(&bundle) {
        client.rank(&req).expect("rank");
    }

    let metrics = client.admin(AdminCommand::Metrics).expect("metrics");
    let hists = metrics.get("histograms").expect("histograms key");
    for h in ["serve.latency", "serve.stage.queue", "serve.stage.score"] {
        let st = hists.get(h).unwrap_or_else(|| panic!("{h} in snapshot"));
        assert!(
            st.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
            "{h} recorded"
        );
    }
    // Traced requests leave exemplars on the latency histogram.
    let exemplars = hists
        .get("serve.latency")
        .and_then(|h| h.get("exemplars"))
        .expect("latency histogram carries exemplars");
    match exemplars {
        Json::Arr(items) => assert!(!items.is_empty(), "at least one exemplar"),
        other => panic!("exemplars is an array, got {other:?}"),
    }

    let state = client.admin(AdminCommand::State).expect("state");
    assert_eq!(state.get("workers").and_then(Json::as_u64), Some(2));
    assert_eq!(
        state.get("breaker").and_then(Json::as_str),
        Some("closed"),
        "healthy server reports a closed breaker"
    );
    assert!(state.get("cache").and_then(|c| c.get("capacity")).is_some());

    let traces = client.admin(AdminCommand::Traces).expect("traces");
    assert!(
        matches!(traces, Json::Arr(_)),
        "traces listing is an array (drained after completion)"
    );

    let recorder = client.admin(AdminCommand::Recorder).expect("recorder");
    assert!(
        matches!(recorder, Json::Arr(_)),
        "recorder dump is an array"
    );

    tcp.stop();
    server.shutdown();
    ls_obs::set_level(Level::Off);
}

/// A panic injected by ls-fault must leave a black-box recording: the dump
/// is non-empty JSONL and contains the injected-fault event (site, rule
/// index, kind) recorded by the injector before the panic fired.
#[test]
fn injected_fault_lands_in_flight_recorder_dump() {
    let _guard = lock_env();
    ls_obs::recorder::enable(1024);
    let dir = std::env::temp_dir().join(format!(
        "ls-serve-trace-recorder-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.jsonl");
    ls_obs::recorder::set_dump_path(dump.to_str().unwrap());
    ls_obs::recorder::install_panic_hook();

    let bundle = fixture_bundle();
    let spec = FaultSpec::new().rule(FaultRule::at("serve.worker.score", FaultKind::Panic, &[0]));
    let plan = Arc::new(FaultPlan::compile(7, &spec));
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..Default::default()
        },
        plan.clone(),
        None,
    );
    let handle = server.handle();
    let mut failed = 0usize;
    for req in requests(&bundle) {
        match handle.rank(req) {
            Ok(_) => {}
            Err(ServeError::Internal(msg)) => {
                failed += 1;
                assert!(msg.contains("panicked"), "unexpected message {msg:?}");
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    server.shutdown();
    assert_eq!(failed, 1, "the injected panic fails exactly one request");
    assert_eq!(plan.fired(), 1);

    // The worker's panic (although caught) ran the hook, which dumped the
    // ring to the configured path.
    let text = std::fs::read_to_string(&dump).expect("panic hook wrote the dump");
    assert!(!text.trim().is_empty(), "flight-recorder dump is non-empty");
    let fault = text
        .lines()
        .filter_map(|l| ls_obs::parse_json(l).ok())
        .find(|r| {
            r.get("kind").and_then(Json::as_str) == Some("fault")
                && r.get("name").and_then(Json::as_str) == Some("serve.worker.score")
        })
        .expect("injected-fault event present in the dump");
    // b packs (rule index << 8) | kind code; Panic is code 2, rule 0.
    assert_eq!(fault.get("b").and_then(Json::as_u64), Some(2));
    assert_eq!(
        fault.get("a").and_then(Json::as_u64),
        Some(0),
        "first hit at the site"
    );

    ls_obs::recorder::disable();
    let _ = std::fs::remove_dir_all(&dir);
}
