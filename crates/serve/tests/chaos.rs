//! Chaos suite: seeded fault plans drive the serving stack and every
//! request must end in exactly one of two states — a **typed error** or a
//! response **bit-identical** to what the fault-free serial `rank_lineage`
//! path produces. Nothing in between: no partial scores, no poisoned cache
//! entries, no silently-wrong rankings.
//!
//! The plans are compiled from fixed seeds ([`FaultPlan::compile`]), so a
//! failing run reproduces exactly: same seed, same schedule, same faults.

use ls_core::{
    save_model, FallbackScorer, LearnShapleyModel, NearestFallback, Tokenizer, UniformFallback,
};
use ls_dbshap::{
    generate_imdb, imdb_spec, Dataset, DatasetConfig, ImdbConfig, QueryGenConfig, Split,
};
use ls_fault::{BreakerState, ChaosProxy, FaultKind, FaultPlan, FaultRule, FaultSpec};
use ls_nn::EncoderConfig;
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::proto::{encode_request, read_frame, write_frame};
use ls_serve::{
    ModelBundle, RankRequest, RankResponse, RetryPolicy, ServeConfig, ServeError, Server,
    TcpRankClient, TcpServer, Tier,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const MAX_LEN: usize = 48;

// ---------------------------------------------------------------------------
// Fixtures (mirrors tests/serve.rs: hand-built movie db + untrained model —
// inference cost and determinism do not depend on the weight values).
// ---------------------------------------------------------------------------

fn fixture_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[("title", ColType::Str), ("year", ColType::Int)],
    ));
    let titles = [
        "Memento", "Dune", "Arrival", "Heat", "Alien", "Solaris", "Gattaca", "Brazil", "Akira",
        "Contact", "Moon", "Primer",
    ];
    for (i, t) in titles.iter().enumerate() {
        db.insert(
            "movies",
            vec![Value::Str(t.to_string()), Value::Int(1980 + i as i64 * 3)],
        );
    }
    db
}

fn bundle_from_db(db: Database, corpus: &[String]) -> Arc<ModelBundle> {
    let tokenizer = Tokenizer::build(corpus.iter().map(String::as_str), 2000);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        MAX_LEN,
    ));
    let dir = std::env::temp_dir().join(format!(
        "ls-chaos-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, db, MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

fn fixture_bundle() -> Arc<ModelBundle> {
    let db = fixture_db();
    let mut corpus = vec![
        "SELECT title FROM movies WHERE year > 1990".to_string(),
        "movies Memento Dune Arrival Heat Alien Solaris Gattaca Brazil Akira Contact Moon Primer"
            .to_string(),
    ];
    corpus.push("Title 0 1 2 3 4 5 6 7 1980 1995 2010".to_string());
    bundle_from_db(db, &corpus)
}

fn requests(bundle: &ModelBundle) -> Vec<RankRequest> {
    let n = bundle.db.fact_count() as u32;
    (0..8u32)
        .map(|i| RankRequest {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("Title {i}")), Value::Int(i as i64)],
                derivations: Vec::new(),
            },
            lineage: (0..6).map(|j| FactId((i * 5 + j * 3) % n)).collect(),
            deadline: None,
            slo: None,
        })
        .collect()
}

fn serial_answer(bundle: &ModelBundle, req: &RankRequest) -> RankResponse {
    let scores = ls_core::predict_scores(
        &bundle.model,
        &bundle.tokenizer,
        &bundle.db,
        &req.query_sql,
        &req.tuple,
        &req.lineage,
        bundle.max_len,
    );
    RankResponse {
        scores: req.lineage.iter().map(|f| scores[f]).collect(),
        ranking: ls_shapley::rank_descending(&scores),
        cached: false,
        degraded: false,
        stages: None,
        tier: Some(Tier::Learned),
    }
}

fn assert_bit_identical(served: &RankResponse, serial: &RankResponse) {
    assert_eq!(served.ranking, serial.ranking, "ranking differs");
    assert_eq!(served.scores.len(), serial.scores.len());
    for (i, (a, b)) in served.scores.iter().zip(&serial.scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score {i} not bit-identical: {a} vs {b}"
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism of the schedule itself
// ---------------------------------------------------------------------------

/// Same `(seed, spec)` ⇒ same realized fault schedule; a different seed
/// realizes a different one. This is what makes any chaos failure below
/// replayable from its seed alone.
#[test]
fn same_seed_compiles_the_same_schedule() {
    let spec = FaultSpec::new()
        .rule(FaultRule::bernoulli(
            "serve.worker.score",
            FaultKind::Error,
            150,
        ))
        .rule(FaultRule::bernoulli(
            "serve.worker.score",
            FaultKind::Panic,
            60,
        ))
        .rule(FaultRule::bernoulli(
            "serve.tcp.read",
            FaultKind::Truncate,
            40,
        ));
    let a = FaultPlan::compile(2024, &spec);
    let b = FaultPlan::compile(2024, &spec);
    for site in ["serve.worker.score", "serve.tcp.read"] {
        assert_eq!(a.schedule(site, 4096), b.schedule(site, 4096), "{site}");
    }
    let c = FaultPlan::compile(2025, &spec);
    assert_ne!(
        a.schedule("serve.worker.score", 4096),
        c.schedule("serve.worker.score", 4096)
    );
}

// ---------------------------------------------------------------------------
// The chaos invariant
// ---------------------------------------------------------------------------

/// A matrix of fixed seeds, each realizing a different mix of injected
/// scoring errors, scoring panics, and worker-thread aborts. Under every
/// plan, every request must end in a typed error or a response
/// bit-identical to the fault-free serial path — across three rounds so
/// requests also land on respawned workers and warmed caches.
#[test]
fn chaos_matrix_typed_error_or_bit_identical() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    for seed in [3u64, 17, 92] {
        let spec = FaultSpec::new()
            .rule(FaultRule::bernoulli(
                "serve.worker.score",
                FaultKind::Error,
                120,
            ))
            .rule(FaultRule::bernoulli(
                "serve.worker.score",
                FaultKind::Panic,
                60,
            ))
            .rule(FaultRule::every("serve.worker.poll", FaultKind::Panic, 31, 7).limit(2));
        let plan = Arc::new(FaultPlan::compile(seed, &spec));
        let server = Server::start_with(
            bundle.clone(),
            ServeConfig {
                workers: 3,
                cache_capacity: 64,
                ..Default::default()
            },
            plan.clone(),
            None,
        );
        let handle = server.handle();
        let mut ok = 0usize;
        let mut failed = 0usize;
        for _round in 0..3 {
            let results: Vec<Result<RankResponse, ServeError>> = std::thread::scope(|scope| {
                let joins: Vec<_> = reqs
                    .iter()
                    .map(|r| {
                        let handle = handle.clone();
                        let r = r.clone();
                        scope.spawn(move || handle.rank(r))
                    })
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Ok(resp) => {
                        ok += 1;
                        assert!(!resp.degraded, "no breaker configured in this run");
                        assert_bit_identical(&resp, &serial[i]);
                    }
                    Err(ServeError::Internal(_)) => failed += 1,
                    Err(other) => panic!("seed {seed}: untyped/unexpected error {other:?}"),
                }
            }
        }
        assert!(
            plan.fired() > 0,
            "seed {seed}: plan injected nothing — rates too low to test anything"
        );
        assert!(ok > 0, "seed {seed}: every request failed");
        server.shutdown();
        eprintln!(
            "chaos seed {seed}: {ok} ok, {failed} typed failures, {} faults fired",
            plan.fired()
        );
    }
}

/// The acceptance pin: one injected worker panic fails exactly one job with
/// a typed Internal error; every subsequent request succeeds bit-identically
/// on the same (still alive) worker.
#[test]
fn injected_worker_panic_fails_exactly_one_job() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    let spec = FaultSpec::new().rule(FaultRule::at("serve.worker.score", FaultKind::Panic, &[0]));
    let plan = Arc::new(FaultPlan::compile(7, &spec));
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..Default::default()
        },
        plan.clone(),
        None,
    );
    let handle = server.handle();
    let mut failures = 0usize;
    for (i, req) in reqs.iter().enumerate() {
        match handle.rank(req.clone()) {
            Ok(resp) => assert_bit_identical(&resp, &serial[i]),
            Err(ServeError::Internal(msg)) => {
                failures += 1;
                assert!(msg.contains("panicked"), "unexpected message {msg:?}");
                assert_eq!(i, 0, "only the faulted hit may fail");
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(failures, 1, "exactly one job fails, exactly once");
    assert_eq!(plan.fired(), 1);
    server.shutdown();
}

/// A panic at the poll site (outside `catch_unwind`) kills the worker
/// thread itself; the `RespawnGuard` replaces it and serving continues with
/// no lost requests. Shutdown then joins the replacement threads too.
#[test]
fn worker_thread_abort_respawns_the_pool() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    // Both initial workers die on their first poll; their replacements serve.
    let spec = FaultSpec::new().rule(FaultRule::at(
        "serve.worker.poll",
        FaultKind::Panic,
        &[0, 1],
    ));
    let plan = Arc::new(FaultPlan::compile(5, &spec));
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
        plan.clone(),
        None,
    );
    let handle = server.handle();
    for (i, req) in reqs.iter().enumerate() {
        let resp = handle.rank(req.clone()).expect("respawned pool serves");
        assert_bit_identical(&resp, &serial[i]);
    }
    assert_eq!(plan.fired(), 2, "both thread-abort faults fired");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Degraded mode: circuit breaker + sim_w nearest-queries fallback
// ---------------------------------------------------------------------------

fn imdb_dataset() -> Dataset {
    let db = generate_imdb(&ImdbConfig {
        companies: 10,
        actors: 40,
        movies: 50,
        roles_per_movie: 2,
        seed: 9,
    });
    let cfg = DatasetConfig {
        query_gen: QueryGenConfig {
            num_queries: 10,
            ..Default::default()
        },
        max_tuples_per_query: 4,
        max_lineage: 25,
        ..Default::default()
    };
    Dataset::build(db, &imdb_spec(), &cfg)
}

/// End-to-end degraded mode over real data: repeated injected scoring
/// failures open the breaker, dispatch flips to the paper's `sim_w` Nearest
/// Queries fallback with responses explicitly marked `degraded`, and after
/// the cooldown a half-open probe on the healthy model path closes the
/// breaker again — full-fidelity responses resume, bit-identical to serial.
#[test]
fn breaker_degrades_to_nearest_fallback_and_recovers() {
    let ds = imdb_dataset();
    let train = ds.split_indices(Split::Train);
    let fallback = Arc::new(NearestFallback::fit(&ds, &train, 3));

    // Serve over the dataset's own database, with requests drawn from its
    // query log so the fallback has meaningful neighbors.
    let mut corpus: Vec<String> = ds.queries.iter().map(|q| q.sql.clone()).collect();
    for f in 0..ds.db.fact_count() {
        if let Some((table, row)) = ds.db.fact(FactId(f as u32)) {
            corpus.push(format!("{table} {}", row.tuple_string()));
        }
    }
    let reqs: Vec<RankRequest> = ds
        .queries
        .iter()
        .filter(|q| !q.tuples.is_empty())
        .take(4)
        .map(|q| {
            let t = &q.tuples[0];
            RankRequest {
                query_sql: q.sql.clone(),
                tuple: q.result.tuples[t.tuple_idx].clone(),
                lineage: t.shapley.keys().copied().collect(),
                deadline: None,
                slo: None,
            }
        })
        .collect();
    assert!(reqs.len() >= 3, "dataset produced too few servable queries");
    let bundle = bundle_from_db(ds.db.clone(), &corpus);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    // The first scoring hit fails; breaker_failures = 1 opens immediately.
    let spec = FaultSpec::new().rule(FaultRule::at("serve.worker.score", FaultKind::Error, &[0]));
    let plan = Arc::new(FaultPlan::compile(13, &spec));
    let cooldown = Duration::from_millis(500);
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            breaker_failures: 1,
            breaker_cooldown: cooldown,
            ..Default::default()
        },
        plan,
        Some(fallback.clone()),
    );
    let handle = server.handle();

    // 1. The injected failure surfaces typed and trips the breaker.
    match handle.rank(reqs[0].clone()) {
        Err(ServeError::Internal(msg)) => assert!(msg.contains("injected"), "{msg:?}"),
        other => panic!("expected injected Internal error, got {other:?}"),
    }
    assert_eq!(server.breaker_state(), BreakerState::Open);

    // 2. While open, requests are answered by the fallback, marked degraded,
    //    and carry exactly the nearest-queries scores (bit-identical to
    //    calling the fallback directly).
    let degraded = handle.rank(reqs[1].clone()).expect("fallback answers");
    assert!(degraded.degraded, "response must be marked degraded");
    assert!(!degraded.cached, "degraded responses are never cached");
    assert_eq!(
        degraded.tier, None,
        "degraded responses are no tier's answer and must not claim one"
    );
    let expected = fallback
        .score(&reqs[1].query_sql, &reqs[1].lineage)
        .expect("nearest fallback must answer a log query");
    assert_eq!(degraded.scores.len(), expected.len());
    for (a, b) in degraded.scores.iter().zip(&expected) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "degraded scores must be the fallback's"
        );
    }

    // 3. After the cooldown, the half-open probe takes the (now healthy)
    //    model path, succeeds, and closes the breaker: full fidelity again.
    std::thread::sleep(cooldown + Duration::from_millis(100));
    let recovered = handle.rank(reqs[2].clone()).expect("probe succeeds");
    assert!(!recovered.degraded, "model path is back");
    assert_bit_identical(&recovered, &serial[2]);
    assert_eq!(server.breaker_state(), BreakerState::Closed);
    server.shutdown();
}

/// With the breaker open and no fallback configured, requests fail with a
/// typed Internal error — never a hang, never a fabricated ranking.
#[test]
fn open_breaker_without_fallback_fails_typed() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let spec = FaultSpec::new().rule(FaultRule::at("serve.worker.score", FaultKind::Error, &[0]));
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            breaker_failures: 1,
            breaker_cooldown: Duration::from_secs(60),
            ..Default::default()
        },
        Arc::new(FaultPlan::compile(1, &spec)),
        None,
    );
    let handle = server.handle();
    assert!(matches!(
        handle.rank(reqs[0].clone()),
        Err(ServeError::Internal(_))
    ));
    match handle.rank(reqs[1].clone()) {
        Err(ServeError::Internal(msg)) => {
            assert!(msg.contains("no fallback"), "unexpected message {msg:?}")
        }
        other => panic!("expected typed degraded error, got {other:?}"),
    }
    server.shutdown();
}

/// The uniform fallback keeps availability even with no training log: every
/// degraded response exists, is marked, and ranks in fact-id order (the
/// documented tie-break for all-equal scores).
#[test]
fn uniform_fallback_preserves_availability() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let spec = FaultSpec::new().rule(FaultRule::at("serve.worker.score", FaultKind::Error, &[0]));
    let server = Server::start_with(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            breaker_failures: 1,
            breaker_cooldown: Duration::from_secs(60),
            ..Default::default()
        },
        Arc::new(FaultPlan::compile(1, &spec)),
        Some(Arc::new(UniformFallback)),
    );
    let handle = server.handle();
    let _ = handle.rank(reqs[0].clone()); // trips the breaker
    let resp = handle
        .rank(reqs[1].clone())
        .expect("uniform always answers");
    assert!(resp.degraded);
    assert!(resp.scores.iter().all(|&s| s == 0.0));
    let mut sorted = resp.ranking.clone();
    sorted.sort_by_key(|f| f.0);
    assert_eq!(resp.ranking, sorted, "all-zero scores rank by fact id");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Wire chaos: torn frames, garbage, oversized lengths, proxy faults
// ---------------------------------------------------------------------------

/// Garbage JSON inside a well-formed frame gets a typed reply and the
/// connection keeps serving — the framing layer is still in sync.
#[test]
fn garbage_json_keeps_the_connection_alive() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial = serial_answer(&bundle, &reqs[0]);
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream);

    write_frame(&mut writer, b"this is not json at all").expect("write garbage");
    let payload = read_frame(&mut reader).expect("reply").expect("not EOF");
    let (id, result) = ls_serve::proto::decode_response(&payload).expect("typed reply");
    assert_eq!(id, 0, "unparseable request answers under id 0");
    assert!(matches!(result, Err(ServeError::BadRequest(_))));

    // Same connection, real request: still fully functional.
    write_frame(&mut writer, &encode_request(42, &reqs[0], None)).expect("write real");
    let payload = read_frame(&mut reader).expect("reply").expect("not EOF");
    let (id, result) = ls_serve::proto::decode_response(&payload).expect("decode");
    assert_eq!(id, 42);
    assert_bit_identical(&result.expect("served"), &serial);
    tcp.stop();
    server.shutdown();
}

/// A client that dies mid-frame (header promises more bytes than ever
/// arrive) tears exactly its own connection; the listener and subsequent
/// connections are untouched.
#[test]
fn mid_frame_disconnect_only_kills_that_connection() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial = serial_answer(&bundle, &reqs[0]);
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");

    {
        let mut stream = TcpStream::connect(tcp.local_addr()).expect("connect");
        stream
            .write_all(&100u32.to_le_bytes())
            .expect("header promising 100 bytes");
        stream.write_all(b"only ten b").expect("partial body");
        // Drop mid-frame: the server side sees UnexpectedEof and tears down.
    }

    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("fresh connection");
    let resp = client.rank(&reqs[0]).expect("listener still serving");
    assert_bit_identical(&resp, &serial);
    tcp.stop();
    server.shutdown();
}

/// An absurd declared frame length is rejected before any allocation; the
/// offending connection is closed, everyone else keeps going.
#[test]
fn oversized_length_prefix_tears_connection_not_listener() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");

    let mut stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    stream
        .write_all(&(ls_serve::MAX_FRAME + 1).to_le_bytes())
        .expect("oversized header");
    stream.flush().expect("flush");
    // The server must close this connection without reading a body.
    let mut buf = [0u8; 8];
    let n = std::io::Read::read(&mut stream, &mut buf).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed, not answered");

    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("fresh connection");
    client.rank(&reqs[0]).expect("listener still serving");
    tcp.stop();
    server.shutdown();
}

/// Full wire chaos through the [`ChaosProxy`]: the seeded plan tears and
/// errors connections in both directions, and the retrying client still
/// gets every answer, each bit-identical to serial — reconnect + idempotent
/// resend hides transient transport faults completely.
#[test]
fn chaos_proxy_with_retries_still_bit_identical() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");

    // A bounded number of tears/errors on both directions: enough to force
    // several reconnects, few enough that retries (6 per call) always win.
    let spec = FaultSpec::new()
        .rule(FaultRule::every("proxy.s2c.read", FaultKind::Truncate, 9, 4).limit(2))
        .rule(FaultRule::every("proxy.c2s.read", FaultKind::Error, 11, 6).limit(2));
    let plan = Arc::new(FaultPlan::compile(31, &spec));
    let proxy = ChaosProxy::start(tcp.local_addr(), plan.clone()).expect("proxy");

    let policy = RetryPolicy {
        attempts: 6,
        backoff: ls_fault::Backoff::new(Duration::from_millis(2), Duration::from_millis(20), 31),
        deadline: None,
    };
    let mut client = TcpRankClient::connect_with(proxy.local_addr(), policy).expect("connect");
    for round in 0..3 {
        for (i, req) in reqs.iter().enumerate() {
            let resp = client
                .rank(req)
                .unwrap_or_else(|e| panic!("round {round} req {i}: {e}"));
            assert_bit_identical(&resp, &serial[i]);
        }
    }
    assert!(plan.fired() > 0, "proxy injected nothing");
    proxy.stop();
    tcp.stop();
    server.shutdown();
}

/// A retry policy with a deadline gives up in bounded time against a dead
/// endpoint, with a typed Transport error.
#[test]
fn retry_deadline_bounds_time_against_dead_endpoint() {
    // Bind-then-drop: the port exists but nothing listens.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let policy = RetryPolicy {
        attempts: 10,
        backoff: ls_fault::Backoff::new(Duration::from_millis(50), Duration::from_millis(200), 7),
        deadline: Some(Duration::from_millis(150)),
    };
    // The eager connect in connect_with must itself fail fast.
    assert!(TcpRankClient::connect_with(dead, policy).is_err());
}

// ---------------------------------------------------------------------------
// Concurrency: pause/resume under live submissions
// ---------------------------------------------------------------------------

/// Hammering rank() from many threads while pause()/resume() toggles
/// concurrently must lose no request and deadlock no thread: every
/// submission ends served (bit-identical) or typed-shed (Overloaded).
#[test]
fn pause_resume_under_concurrent_submissions() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let handle = server.handle();
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let handle = handle.clone();
                let reqs = &reqs;
                let serial = &serial;
                scope.spawn(move || {
                    let mut served = 0usize;
                    for k in 0..25 {
                        let i = (c * 25 + k) % reqs.len();
                        match handle.rank(reqs[i].clone()) {
                            Ok(resp) => {
                                served += 1;
                                assert_bit_identical(&resp, &serial[i]);
                            }
                            Err(ServeError::Overloaded) => {} // typed shed is fine
                            Err(other) => panic!("unexpected error {other:?}"),
                        }
                    }
                    served
                })
            })
            .collect();
        // Toggle pause/resume while the clients run.
        for _ in 0..30 {
            server.pause();
            std::thread::sleep(Duration::from_micros(300));
            server.resume();
            std::thread::sleep(Duration::from_micros(300));
        }
        server.resume(); // leave it running for the tail
        let served: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(served > 0, "pausing starved every request");
    });
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Chaos on the SLO-tiered answer path
// ---------------------------------------------------------------------------

/// Budgets calibrated like tests/tiered.rs against `SloPolicy::default()`
/// for the wide shape below.
const LOOSE: Duration = Duration::from_millis(100);
const MEDIUM: Duration = Duration::from_millis(1);
const TIGHT: Duration = Duration::from_micros(100);

fn wide_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "orders",
        &[("id", ColType::Int), ("item", ColType::Str)],
    ));
    db.create_table(TableSchema::new(
        "parts",
        &[("id", ColType::Int), ("name", ColType::Str)],
    ));
    for i in 0..32i64 {
        db.insert(
            "orders",
            vec![Value::Int(i), Value::Str(format!("item {i}"))],
        );
    }
    for i in 0..32i64 {
        db.insert(
            "parts",
            vec![Value::Int(i), Value::Str(format!("part {i}"))],
        );
    }
    db
}

fn wide_bundle() -> Arc<ModelBundle> {
    let corpus = vec![
        "SELECT item FROM orders JOIN parts ON orders.id = parts.id".to_string(),
        "orders parts item part id 0 1 2 3 4 5 6 7".to_string(),
    ];
    bundle_from_db(wide_db(), &corpus)
}

/// A wide-join request (30 two-fact derivations, 60 players).
fn wide_request(slo: Option<Duration>) -> RankRequest {
    let derivations: Vec<ls_relational::Monomial> = (0..30u32)
        .map(|i| ls_relational::Monomial::from_facts(vec![FactId(i), FactId(32 + i)]))
        .collect();
    let lineage: Vec<FactId> = derivations
        .iter()
        .flat_map(|m| m.facts().to_vec())
        .collect();
    RankRequest {
        query_sql: "SELECT item FROM orders JOIN parts ON orders.id = parts.id".into(),
        tuple: OutputTuple {
            values: vec![Value::Str("item 0".into())],
            derivations,
        },
        lineage,
        deadline: None,
        slo,
    }
}

/// A chain-shaped lineage the pairing request never warms (see
/// tests/tiered.rs): its cold probes exercise the sampled tier.
fn chain_request(slo: Option<Duration>) -> RankRequest {
    let derivations: Vec<ls_relational::Monomial> = (0..30u32)
        .map(|i| ls_relational::Monomial::from_facts(vec![FactId(i), FactId(i + 1)]))
        .collect();
    RankRequest {
        query_sql: "SELECT item FROM orders JOIN parts ON orders.id = parts.id".into(),
        tuple: OutputTuple {
            values: vec![Value::Str("item 1".into())],
            derivations,
        },
        lineage: (0..31).map(FactId).collect(),
        deadline: None,
        slo,
    }
}

/// A fixed request schedule covering all three tiers, run twice against the
/// same store directory: phase 1 cold (compiles + persists), phase 2 on a
/// fresh store instance (the exact tier *loads* from disk — the injection
/// point for `circuit.store.read` faults).
fn tiered_schedule() -> Vec<RankRequest> {
    vec![
        chain_request(Some(TIGHT)), // cold chain probe → sampled
        wide_request(Some(MEDIUM)), // model pipeline → learned
        wide_request(Some(LOOSE)),  // circuit store → exact
        wide_request(Some(TIGHT)),  // warm wide shape → exact
        chain_request(Some(TIGHT)), // sampled never persists → sampled again
        wide_request(Some(MEDIUM)),
        wide_request(Some(LOOSE)),
    ]
}

fn run_tiered_phases(
    bundle: &Arc<ModelBundle>,
    dir: &std::path::Path,
    injector: Arc<dyn ls_fault::Injector>,
) -> (Vec<Vec<Result<RankResponse, ServeError>>>, u64) {
    let mut phases = Vec::new();
    let mut load_errors = 0;
    for _phase in 0..2 {
        let store = Arc::new(
            ls_circuit::CircuitStore::open_with(dir, 16, injector.clone()).expect("store"),
        );
        let server = Server::start_full(
            bundle.clone(),
            ServeConfig {
                workers: 2,
                cache_capacity: 16,
                ..Default::default()
            },
            injector.clone(),
            None,
            Some(store.clone()),
        );
        let handle = server.handle();
        phases.push(
            tiered_schedule()
                .into_iter()
                .map(|req| handle.rank(req))
                .collect(),
        );
        load_errors += store.stats().load_errors;
        server.shutdown();
    }
    (phases, load_errors)
}

/// The chaos invariant extended to the tiered path: SLO-budgeted requests
/// under injected store-read corruption and scoring faults must each end in
/// a typed error or a response bit-identical — scores, ranking, **and tier
/// tag** — to the fault-free run at the same schedule position. Store-read
/// faults must be *invisible* in the responses (the store falls back to a
/// fresh compile with identical scores); only scoring faults may surface,
/// and only as typed `Internal` errors.
#[test]
fn tiered_chaos_typed_error_or_bit_identical() {
    let bundle = wide_bundle();

    let baseline_dir = std::env::temp_dir().join(format!(
        "ls-chaos-tiered-base-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let chaos_dir = std::env::temp_dir().join(format!(
        "ls-chaos-tiered-fault-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    for d in [&baseline_dir, &chaos_dir] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("temp dir");
    }

    let (baseline, base_errors) =
        run_tiered_phases(&bundle, &baseline_dir, Arc::new(ls_fault::NoFaults));
    assert_eq!(base_errors, 0, "baseline must be fault-free");
    for (p, phase) in baseline.iter().enumerate() {
        for (i, r) in phase.iter().enumerate() {
            assert!(r.is_ok(), "baseline phase {p} request {i} failed: {r:?}");
        }
    }
    // The schedule really does cover all three tiers.
    let tiers: Vec<_> = baseline
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().ok().and_then(|resp| resp.tier))
        .collect();
    for (tier, label) in [
        (Tier::Exact, "exact"),
        (Tier::Learned, "learned"),
        (Tier::Sampled, "sampled"),
    ] {
        assert!(tiers.contains(&tier), "no {label}-tier coverage");
    }

    // Corrupt the first store reads (phase 2's disk load) and sprinkle
    // scoring faults over the learned pipeline.
    let spec = FaultSpec::new()
        .rule(FaultRule::every("circuit.store.read", FaultKind::Corrupt, 1, 0).limit(2))
        .rule(FaultRule::bernoulli(
            "serve.worker.score",
            FaultKind::Error,
            150,
        ));
    let plan = Arc::new(FaultPlan::compile(47, &spec));
    let (chaotic, load_errors) = run_tiered_phases(&bundle, &chaos_dir, plan.clone());
    assert!(plan.fired() > 0, "plan injected nothing");
    assert!(
        load_errors >= 1,
        "the corrupted store read never fired — phase 2 did not load from disk"
    );

    let mut ok = 0usize;
    let mut failed = 0usize;
    for (p, (base_phase, chaos_phase)) in baseline.iter().zip(&chaotic).enumerate() {
        for (i, (base, chaos)) in base_phase.iter().zip(chaos_phase).enumerate() {
            let want = base.as_ref().expect("baseline all ok");
            match chaos {
                Ok(resp) => {
                    ok += 1;
                    assert!(!resp.degraded, "no breaker configured in this run");
                    assert_eq!(
                        resp.tier, want.tier,
                        "phase {p} request {i}: tier tag diverged under faults"
                    );
                    assert_eq!(resp.ranking, want.ranking, "phase {p} request {i}");
                    for (a, b) in resp.scores.iter().zip(&want.scores) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "phase {p} request {i}: score not bit-identical ({a} vs {b})"
                        );
                    }
                }
                Err(ServeError::Internal(_)) => failed += 1,
                Err(other) => {
                    panic!("phase {p} request {i}: untyped/unexpected error {other:?}")
                }
            }
        }
    }
    assert!(ok > 0, "every tiered request failed under chaos");
    eprintln!("tiered chaos: {ok} ok, {failed} typed failures, {load_errors} store load errors");

    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}
