//! Integration tests for the serving subsystem.
//!
//! The heart is the **differential test**: for any worker count, batching
//! boundary, and cache state, a served response must be bit-identical to
//! what the serial `rank_lineage`/`predict_scores` path produces from the
//! same snapshot. The rest pins the operational contract: overload rejects
//! instead of blocking, deadlines shed, shutdown drains, TCP round-trips.

use ls_core::{save_model, LearnShapleyModel, Tokenizer};
use ls_nn::EncoderConfig;
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::{
    ModelBundle, RankRequest, RankResponse, ServeConfig, ServeError, Server, TcpRankClient,
    TcpServer, Tier,
};
use std::sync::Arc;
use std::time::Duration;

const MAX_LEN: usize = 48;

fn fixture_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[("title", ColType::Str), ("year", ColType::Int)],
    ));
    db.create_table(TableSchema::new(
        "actors",
        &[("name", ColType::Str), ("movie", ColType::Str)],
    ));
    let titles = [
        "Memento", "Dune", "Arrival", "Heat", "Alien", "Solaris", "Gattaca", "Brazil", "Akira",
        "Contact", "Moon", "Primer",
    ];
    for (i, t) in titles.iter().enumerate() {
        db.insert(
            "movies",
            vec![Value::Str(t.to_string()), Value::Int(1980 + i as i64 * 3)],
        );
    }
    for (i, t) in titles.iter().enumerate().take(6) {
        db.insert(
            "actors",
            vec![Value::Str(format!("Actor {i}")), Value::Str(t.to_string())],
        );
    }
    db
}

/// Persist a small model and load it into a serving bundle, exactly like a
/// deployment would.
fn fixture_bundle() -> Arc<ModelBundle> {
    let db = fixture_db();
    let corpus = [
        "SELECT title FROM movies WHERE year > 1990",
        "SELECT name FROM actors WHERE movie = Dune",
        "movies Memento Dune Arrival Heat Alien Solaris Gattaca Brazil Akira Contact Moon Primer",
        "actors Actor 0 1 2 3 4 5 1980 1995 2010",
    ];
    let tokenizer = Tokenizer::build(corpus.iter().copied(), 600);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        MAX_LEN,
    ));
    let dir = std::env::temp_dir().join(format!(
        "ls-serve-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, db, MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

fn requests(bundle: &ModelBundle) -> Vec<RankRequest> {
    let n = bundle.db.fact_count() as u32;
    (0..8u32)
        .map(|i| RankRequest {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("Title {i}")), Value::Int(i as i64)],
                derivations: Vec::new(),
            },
            lineage: (0..6).map(|j| FactId((i * 5 + j * 3) % n)).collect(),
            deadline: None,
            slo: None,
        })
        .collect()
}

fn serial_answer(bundle: &ModelBundle, req: &RankRequest) -> RankResponse {
    let scores = ls_core::predict_scores(
        &bundle.model,
        &bundle.tokenizer,
        &bundle.db,
        &req.query_sql,
        &req.tuple,
        &req.lineage,
        bundle.max_len,
    );
    RankResponse {
        scores: req.lineage.iter().map(|f| scores[f]).collect(),
        ranking: ls_shapley::rank_descending(&scores),
        cached: false,
        degraded: false,
        stages: None,
        tier: Some(Tier::Learned),
    }
}

fn assert_bit_identical(served: &RankResponse, serial: &RankResponse) {
    assert_eq!(served.ranking, serial.ranking, "ranking differs");
    assert_eq!(served.scores.len(), serial.scores.len());
    for (i, (a, b)) in served.scores.iter().zip(&serial.scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score {i} not bit-identical: {a} vs {b}"
        );
    }
}

/// The determinism invariant: served == serial, bit for bit, for any worker
/// count; and a cache hit replays the identical response.
#[test]
fn differential_vs_serial_rank_lineage() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    for workers in [1usize, 4] {
        let server = Server::start(
            bundle.clone(),
            ServeConfig {
                workers,
                cache_capacity: 64,
                ..Default::default()
            },
        );
        let handle = server.handle();
        // Submit concurrently so batching actually coalesces requests.
        let cold: Vec<RankResponse> = std::thread::scope(|scope| {
            let joins: Vec<_> = reqs
                .iter()
                .map(|r| {
                    let handle = handle.clone();
                    let r = r.clone();
                    scope.spawn(move || handle.rank(r).expect("cold rank"))
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for (served, serial) in cold.iter().zip(&serial) {
            assert!(!served.cached, "first pass must miss the cache");
            assert_bit_identical(served, serial);
        }
        // Second pass: every request hits the cache and replays bit-identically.
        for (req, serial) in reqs.iter().zip(&serial) {
            let warm = handle.rank(req.clone()).expect("warm rank");
            assert!(warm.cached, "second pass must hit the cache");
            assert_bit_identical(&warm, serial);
        }
        server.shutdown();
    }
}

/// With the batcher paused, submissions beyond the queue bound are rejected
/// immediately (Overloaded), not blocked; resuming serves the admitted ones.
#[test]
fn overload_rejects_instead_of_blocking() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            queue_depth: 3,
            cache_capacity: 0, // cache off so every submission consumes depth
            ..Default::default()
        },
    );
    let handle = server.handle();
    server.pause();

    // Fill the queue from background threads (rank() blocks until served).
    let waiters: Vec<_> = (0..3)
        .map(|i| {
            let handle = handle.clone();
            let req = reqs[i].clone();
            std::thread::spawn(move || handle.rank(req))
        })
        .collect();
    // Wait until all three are admitted.
    while handle.inflight() < 3 {
        std::thread::yield_now();
    }
    // The fourth must be rejected *now*, while the batcher is still paused —
    // admission control sheds rather than queueing unboundedly.
    assert_eq!(handle.rank(reqs[3].clone()), Err(ServeError::Overloaded));

    server.resume();
    for w in waiters {
        let resp = w.join().unwrap().expect("admitted request served");
        assert_eq!(resp.scores.len(), 6);
    }
    server.shutdown();
}

/// A request whose deadline passes while it is queued is shed with
/// DeadlineExceeded, not scored late.
#[test]
fn expired_deadline_is_shed() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let handle = server.handle();
    server.pause();
    let doomed = {
        let handle = handle.clone();
        let mut req = reqs[0].clone();
        req.deadline = Some(Duration::ZERO);
        std::thread::spawn(move || handle.rank(req))
    };
    while handle.inflight() < 1 {
        std::thread::yield_now();
    }
    // Paused long enough for Duration::ZERO to be over before dispatch.
    std::thread::sleep(Duration::from_millis(5));
    server.resume();
    assert_eq!(doomed.join().unwrap(), Err(ServeError::DeadlineExceeded));
    server.shutdown();
}

/// Shutdown drains: everything admitted before shutdown gets a real answer,
/// everything submitted after is refused.
#[test]
fn shutdown_drains_admitted_work() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    let server = Server::start(
        bundle.clone(),
        ServeConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let handle = server.handle();
    server.pause(); // hold everything in the queue until shutdown
    let waiters: Vec<_> = reqs
        .iter()
        .map(|r| {
            let handle = handle.clone();
            let r = r.clone();
            std::thread::spawn(move || handle.rank(r))
        })
        .collect();
    while handle.inflight() < reqs.len() {
        std::thread::yield_now();
    }
    server.resume();
    server.shutdown(); // must block until every admitted request is answered
    for (w, serial) in waiters.into_iter().zip(&serial) {
        let resp = w.join().unwrap().expect("drained request served");
        assert_bit_identical(&resp, serial);
    }
    // The server is gone; a fresh handle submission is refused.
    assert_eq!(handle.rank(reqs[0].clone()), Err(ServeError::ShuttingDown));
}

/// Full TCP round-trip: the framed JSON protocol preserves bit-identity.
#[test]
fn tcp_round_trip_is_bit_identical() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let mut client = TcpRankClient::connect(tcp.local_addr()).expect("connect");
    for (req, serial) in reqs.iter().zip(&serial) {
        let resp = client.rank(req).expect("tcp rank");
        assert_bit_identical(&resp, serial);
    }
    // Errors cross the wire typed, not as transport failures.
    let bad = RankRequest {
        query_sql: "SELECT 1".into(),
        tuple: OutputTuple {
            values: vec![Value::Int(1)],
            derivations: Vec::new(),
        },
        lineage: vec![FactId(u32::MAX - 1)],
        deadline: None,
        slo: None,
    };
    match client.rank(&bad) {
        Err(ServeError::BadRequest(msg)) => assert!(msg.contains("unknown fact")),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    tcp.stop();
    server.shutdown();
}

/// Empty lineages and malformed requests answer immediately without
/// consuming queue depth.
#[test]
fn edge_requests_answer_inline() {
    let bundle = fixture_bundle();
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let handle = server.handle();
    let empty = handle
        .rank(RankRequest {
            query_sql: "SELECT title FROM movies".into(),
            tuple: OutputTuple {
                values: vec![Value::Str("x".into())],
                derivations: Vec::new(),
            },
            lineage: Vec::new(),
            deadline: None,
            slo: None,
        })
        .expect("empty lineage is fine");
    assert!(empty.scores.is_empty() && empty.ranking.is_empty());
    assert_eq!(handle.inflight(), 0);

    let err = handle.rank(RankRequest {
        query_sql: String::new(),
        tuple: OutputTuple {
            values: Vec::new(),
            derivations: Vec::new(),
        },
        lineage: vec![FactId(0)],
        deadline: None,
        slo: None,
    });
    assert!(matches!(err, Err(ServeError::BadRequest(_))));
    server.shutdown();
}
