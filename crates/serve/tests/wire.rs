//! Wire-protocol tests: binary decoder robustness, version negotiation,
//! and cross-protocol equivalence.
//!
//! Three contracts are pinned here:
//!
//! 1. **The binary decoder never panics.** Arbitrary byte soups and every
//!    truncation of a valid frame must come back as a typed [`FrameError`],
//!    not a panic or a bogus decode — the server feeds it bytes straight
//!    off the network.
//! 2. **Version negotiation degrades, never breaks.** A binary-preferring
//!    client against a binary server speaks binary; against a legacy
//!    JSON-only server it falls back to JSON — sticky, transparent, and
//!    with correct answers either way.
//! 3. **Protocol choice is invisible in the answers.** The same request
//!    served over JSON and over binary yields bit-identical scores and the
//!    same ranking as the serial oracle, on the epoll and poll backends,
//!    with one shard or several, pipelined or not.

use ls_core::{save_model, LearnShapleyModel, Tokenizer};
use ls_fault::NoFaults;
use ls_nn::EncoderConfig;
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::{
    proto, Backend, FrameError, ModelBundle, Protocol, RankRequest, RankResponse, RetryPolicy,
    ServeConfig, Server, TcpOptions, TcpRankClient, TcpServer, Tier,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const MAX_LEN: usize = 48;

// ---------------------------------------------------------------------------
// Fixture (mirrors tests/serve.rs: persist a small model, load a bundle)
// ---------------------------------------------------------------------------

fn fixture_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[("title", ColType::Str), ("year", ColType::Int)],
    ));
    db.create_table(TableSchema::new(
        "actors",
        &[("name", ColType::Str), ("movie", ColType::Str)],
    ));
    let titles = [
        "Memento", "Dune", "Arrival", "Heat", "Alien", "Solaris", "Gattaca", "Brazil", "Akira",
        "Contact", "Moon", "Primer",
    ];
    for (i, t) in titles.iter().enumerate() {
        db.insert(
            "movies",
            vec![Value::Str(t.to_string()), Value::Int(1980 + i as i64 * 3)],
        );
    }
    for (i, t) in titles.iter().enumerate().take(6) {
        db.insert(
            "actors",
            vec![Value::Str(format!("Actor {i}")), Value::Str(t.to_string())],
        );
    }
    db
}

fn fixture_bundle() -> Arc<ModelBundle> {
    let db = fixture_db();
    let corpus = [
        "SELECT title FROM movies WHERE year > 1990",
        "SELECT name FROM actors WHERE movie = Dune",
        "movies Memento Dune Arrival Heat Alien Solaris Gattaca Brazil Akira Contact Moon Primer",
        "actors Actor 0 1 2 3 4 5 1980 1995 2010",
    ];
    let tokenizer = Tokenizer::build(corpus.iter().copied(), 600);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        MAX_LEN,
    ));
    let dir = std::env::temp_dir().join(format!(
        "ls-wire-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &path).expect("save");
    let bundle = ModelBundle::load(&path, db, MAX_LEN).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(bundle)
}

fn requests(bundle: &ModelBundle) -> Vec<RankRequest> {
    let n = bundle.db.fact_count() as u32;
    (0..8u32)
        .map(|i| RankRequest {
            query_sql: format!("SELECT title FROM movies WHERE year > {}", 1980 + i),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("Title {i}")), Value::Int(i as i64)],
                derivations: Vec::new(),
            },
            lineage: (0..6).map(|j| FactId((i * 5 + j * 3) % n)).collect(),
            deadline: None,
            slo: None,
        })
        .collect()
}

fn serial_answer(bundle: &ModelBundle, req: &RankRequest) -> RankResponse {
    let scores = ls_core::predict_scores(
        &bundle.model,
        &bundle.tokenizer,
        &bundle.db,
        &req.query_sql,
        &req.tuple,
        &req.lineage,
        bundle.max_len,
    );
    RankResponse {
        scores: req.lineage.iter().map(|f| scores[f]).collect(),
        ranking: ls_shapley::rank_descending(&scores),
        cached: false,
        degraded: false,
        stages: None,
        tier: Some(Tier::Learned),
    }
}

fn assert_bit_identical(served: &RankResponse, serial: &RankResponse) {
    assert_eq!(served.ranking, serial.ranking, "ranking differs");
    assert_eq!(served.scores.len(), serial.scores.len());
    for (i, (a, b)) in served.scores.iter().zip(&serial.scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score {i} not bit-identical: {a} vs {b}"
        );
    }
}

// ---------------------------------------------------------------------------
// 1. Decoder robustness: typed errors, never panics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes through every binary decode entry point: the only
    /// acceptable outcomes are a successful decode or a typed [`FrameError`].
    /// (Calling them at all is the assertion — a panic fails the test.)
    #[test]
    fn binary_decoders_never_panic_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = proto::decode_binary_frame(&bytes);
        let _ = proto::decode_binary_response(&bytes);
        let _ = proto::decode_binary_feedback_response(&bytes);
        let _ = proto::decode_binary_admin_response(&bytes);
    }

    /// Valid request frames truncated at every prefix length must decode to
    /// a typed error, never a panic and never a bogus success.
    #[test]
    fn truncated_request_frames_yield_typed_errors(seed in 0u32..64) {
        let req = RankRequest {
            query_sql: format!("SELECT x FROM t WHERE y > {seed}"),
            tuple: OutputTuple {
                values: vec![Value::Str(format!("v{seed}")), Value::Int(seed as i64)],
                derivations: Vec::new(),
            },
            lineage: (0..(seed % 7)).map(FactId).collect(),
            deadline: None,
            slo: None,
        };
        let frame = proto::encode_binary_request(seed as u64, &req, None);
        let payload = &frame[4..]; // strip the length prefix
        prop_assert!(proto::decode_binary_frame(payload).is_ok());
        for cut in 0..payload.len() {
            // The Err type IS FrameError — any Err is a typed rejection.
            prop_assert!(
                proto::decode_binary_frame(&payload[..cut]).is_err(),
                "cut {cut}: truncated frame decoded",
            );
        }
    }

    /// Same for response frames, through the client-side decoder.
    #[test]
    fn truncated_response_frames_yield_typed_errors(seed in 0u32..64) {
        let resp = RankResponse {
            scores: (0..(seed % 5) as usize).map(|i| (i as f64) * 0.25 - 0.5).collect(),
            ranking: (0..(seed % 5)).map(FactId).collect(),
            cached: seed % 2 == 0,
            degraded: false,
            stages: None,
            tier: None,
        };
        let frame = proto::encode_binary_response(seed as u64, &Ok(resp));
        let payload = &frame[4..];
        prop_assert!(proto::decode_binary_response(payload).is_ok());
        for cut in 0..payload.len() {
            prop_assert!(
                proto::decode_binary_response(&payload[..cut]).is_err(),
                "cut {cut}: truncated frame decoded",
            );
        }
    }
}

#[test]
fn hello_rejects_wrong_magic_and_version_mismatch_is_visible() {
    // Round trip at the current version.
    let hello = proto::encode_hello(proto::BINARY_VERSION);
    assert_eq!(proto::decode_hello(&hello), Ok(proto::BINARY_VERSION));
    // A future version decodes (the caller decides compatibility).
    assert_eq!(proto::decode_hello(&proto::encode_hello(7)), Ok(7));
    // Wrong magic is a typed error.
    let mut bad = hello;
    bad[0] ^= 0xFF;
    assert!(matches!(
        proto::decode_hello(&bad),
        Err(FrameError::BadMagic(_))
    ));
    // The magic deliberately reads as an oversized length prefix to a
    // legacy JSON server, so it tears the connection instead of parsing
    // garbage. Pin that property: it is what makes fallback detectable.
    let as_len = u32::from_le_bytes(proto::MAGIC);
    assert!(as_len > proto::MAX_FRAME, "magic must exceed MAX_FRAME");
}

// ---------------------------------------------------------------------------
// 2. Version negotiation matrix
// ---------------------------------------------------------------------------

/// A thread-per-connection JSON-only server — the previous generation of
/// this crate's front-end, reconstructed to test fallback against. It knows
/// nothing of the hello: the magic arrives as an oversized length prefix,
/// `read_frame` rejects it, and the connection drops.
fn spawn_legacy_json_server(bundle: Arc<ModelBundle>) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind legacy");
    let addr = listener.local_addr().expect("addr");
    let server = Server::start(bundle, ServeConfig::default());
    let handle = server.handle();
    std::thread::spawn(move || {
        let _server = server; // keep the pool alive for the test's lifetime
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut reader = std::io::BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                // A torn prefix (the binary magic) errors out of read_frame
                // and ends the connection — exactly what a legacy server did.
                while let Ok(Some(payload)) = proto::read_frame(&mut reader) {
                    let reply = match proto::decode_frame(&payload) {
                        Ok(proto::Frame::Rank(id, req, _)) => {
                            proto::encode_response(id, &handle.rank(req))
                        }
                        Ok(_) | Err(_) => return,
                    };
                    if proto::write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn negotiation_matrix_binary_json_and_legacy_fallback() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    // Modern server: speaks both.
    let server = Server::start(bundle.clone(), ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let addr = tcp.local_addr();

    // binary client ↔ binary server: negotiated up.
    let mut bin = TcpRankClient::connect_binary(addr).expect("binary connect");
    assert_eq!(bin.protocol(), Protocol::Binary);
    assert_bit_identical(&bin.rank(&reqs[0]).expect("binary rank"), &serial[0]);

    // json client ↔ binary server: plain JSON, no hello on the wire.
    let mut json = TcpRankClient::connect(addr).expect("json connect");
    assert_eq!(json.protocol(), Protocol::Json);
    assert_bit_identical(&json.rank(&reqs[1]).expect("json rank"), &serial[1]);

    tcp.stop();
    server.shutdown();

    // binary-preferring client ↔ legacy JSON-only server: sticky fallback.
    let legacy = spawn_legacy_json_server(bundle);
    let mut fb = TcpRankClient::connect_opts(legacy, RetryPolicy::default(), Protocol::Binary)
        .expect("fallback connect");
    assert_eq!(
        fb.protocol(),
        Protocol::Json,
        "client must fall back to JSON against a legacy server"
    );
    for (req, oracle) in reqs.iter().zip(&serial).take(3) {
        assert_bit_identical(&fb.rank(req).expect("fallback rank"), oracle);
    }
    // Still sticky after the answers: no re-negotiation attempts.
    assert_eq!(fb.protocol(), Protocol::Json);
}

// ---------------------------------------------------------------------------
// 3. Cross-protocol equivalence, backends, shards, pipelining
// ---------------------------------------------------------------------------

/// The differential contract: the same requests served over JSON and over
/// binary are bit-identical to each other and to the serial oracle.
#[test]
fn binary_and_json_answers_are_bit_identical() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    let server = Server::start(bundle, ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");
    let mut json = TcpRankClient::connect(tcp.local_addr()).expect("json");
    let mut bin = TcpRankClient::connect_binary(tcp.local_addr()).expect("binary");
    assert_eq!(bin.protocol(), Protocol::Binary);

    for (req, oracle) in reqs.iter().zip(&serial) {
        let a = json.rank(req).expect("json rank");
        let b = bin.rank(req).expect("binary rank");
        assert_bit_identical(&a, oracle);
        assert_bit_identical(&b, oracle);
        assert_eq!(
            a.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "protocols disagree on score bits"
        );
    }
    tcp.stop();
    server.shutdown();
}

/// The poll(2) backend with two shards serves the same answers — the
/// fallback path gets real coverage, not just the platform default.
#[test]
fn poll_backend_two_shards_round_trip() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    let server = Server::start(bundle, ServeConfig::default());
    let tcp = TcpServer::start_opts(
        server.handle(),
        "127.0.0.1:0",
        Arc::new(NoFaults),
        TcpOptions {
            shards: 2,
            backend: Some(Backend::Poll),
            ..TcpOptions::default()
        },
    )
    .expect("bind poll backend");
    let addr = tcp.local_addr();

    // Several clients so both shards see connections (round-robin accept).
    let mut clients: Vec<TcpRankClient> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                TcpRankClient::connect_binary(addr).expect("client")
            } else {
                TcpRankClient::connect(addr).expect("client")
            }
        })
        .collect();
    for (i, (req, oracle)) in reqs.iter().zip(&serial).enumerate() {
        let client = &mut clients[i % 4];
        assert_bit_identical(&client.rank(req).expect("rank"), oracle);
    }
    tcp.stop();
    server.shutdown();
}

/// Pipelining: many requests written back-to-back on one raw binary
/// connection, responses read afterward. Every response id must map to a
/// request and carry that request's answer — no mixing, no reordering of
/// payloads across ids.
#[test]
fn pipelined_binary_requests_never_mix() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial: Vec<RankResponse> = reqs.iter().map(|r| serial_answer(&bundle, r)).collect();

    let server = Server::start(bundle, ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");

    let mut stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    stream
        .write_all(&proto::encode_hello(proto::BINARY_VERSION))
        .expect("hello");
    let mut ack = [0u8; proto::HELLO_LEN];
    stream.read_exact(&mut ack).expect("hello ack");
    assert_eq!(proto::decode_hello(&ack), Ok(proto::BINARY_VERSION));

    // Burst: ids 10..10+n, two rounds through the request set, all written
    // before any response is read.
    let n = reqs.len() * 2;
    for i in 0..n {
        let id = 10 + i as u64;
        let frame = proto::encode_binary_request(id, &reqs[i % reqs.len()], None);
        stream.write_all(&frame).expect("write");
    }
    let mut reader = std::io::BufReader::new(stream);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let payload = proto::read_frame(&mut reader)
            .expect("read")
            .expect("eof before all responses");
        let (id, result) = proto::decode_binary_response(&payload).expect("decode");
        let i = (id - 10) as usize;
        assert!(i < n, "unknown response id {id}");
        assert!(!seen[i], "duplicate response for id {id}");
        seen[i] = true;
        assert_bit_identical(&result.expect("rank ok"), &serial[i % reqs.len()]);
    }
    assert!(seen.iter().all(|&s| s), "missing responses");
    tcp.stop();
    server.shutdown();
}

/// Garbage inside a well-formed binary frame gets a typed id-0 error reply
/// and the connection keeps serving — only torn framing poisons it.
#[test]
fn binary_garbage_frame_gets_typed_reply_connection_survives() {
    let bundle = fixture_bundle();
    let reqs = requests(&bundle);
    let serial = serial_answer(&bundle, &reqs[0]);

    let server = Server::start(bundle, ServeConfig::default());
    let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind");

    let mut stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    stream
        .write_all(&proto::encode_hello(proto::BINARY_VERSION))
        .expect("hello");
    let mut ack = [0u8; proto::HELLO_LEN];
    stream.read_exact(&mut ack).expect("hello ack");

    // A correctly length-prefixed frame whose payload is junk.
    let junk = [0xEEu8; 13];
    stream
        .write_all(&(junk.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(&junk).expect("junk");

    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let payload = proto::read_frame(&mut reader)
        .expect("read reply")
        .expect("server must reply, not hang up");
    let (id, result) = proto::decode_binary_response(&payload).expect("typed reply");
    assert_eq!(id, 0, "garbage frames are answered under the sentinel id");
    assert!(
        matches!(result, Err(ls_serve::ServeError::BadRequest(_))),
        "expected BadRequest, got {result:?}"
    );

    // The same connection still serves a real request afterward.
    stream
        .write_all(&proto::encode_binary_request(42, &reqs[0], None))
        .expect("write real request");
    let payload = proto::read_frame(&mut reader)
        .expect("read")
        .expect("connection should have survived the garbage frame");
    let (id, result) = proto::decode_binary_response(&payload).expect("decode");
    assert_eq!(id, 42);
    assert_bit_identical(&result.expect("rank ok"), &serial);
    tcp.stop();
    server.shutdown();
}
