//! # ls-serve — zero-dependency model serving for LearnShapley
//!
//! Serving infrastructure for a trained LearnShapley model: load a
//! [`persisted snapshot`](ls_core::load_model) once, share its weights
//! read-only across a pool of worker threads, and answer ranking requests
//! through dynamic micro-batching, an LRU ranking cache, and explicit
//! admission control — all on `std` alone.
//!
//! ```text
//! ServeHandle::rank ─▶ admission (cache / depth / deadline)
//!                        └▶ micro-batcher ─▶ worker pool ─▶ response
//! ```
//!
//! Two front doors:
//!
//! * **in-process** — [`Server::start`] + [`ServeHandle::rank`];
//! * **TCP** — [`TcpServer`] speaking the length-prefixed JSON frames of
//!   [`proto`], with [`TcpRankClient`] as the matching client.
//!
//! The contract that makes the subsystem trustworthy is *determinism*: for a
//! fixed model snapshot, a response is bit-identical to what the serial
//! [`ls_core::rank_lineage`] produces — for any worker count, any batching
//! boundary, cache hit or miss, in-process or over TCP. See
//! [`server`] for how the invariant is enforced and `tests/serve.rs` for the
//! differential test that pins it.
//!
//! Telemetry flows through `ls-obs` when enabled: `serve.queue_depth`
//! (gauge), `serve.batch_items` / `serve.latency` (histograms), and
//! `serve.cache_hit` / `serve.cache_miss` / `serve.shed_overload` /
//! `serve.shed_deadline` (counters).
//!
//! ## Tracing & introspection
//!
//! Every request can carry an [`ls_obs::TraceContext`] end to end: the TCP
//! client mints (or propagates) one, the wire carries it as hex ids, and
//! the engine threads it through queue → batcher → worker pool so spans and
//! stage histograms (`serve.stage.*`) attribute to the request. Successful
//! traced responses return a [`StageBreakdown`] whose disjoint stages sum
//! exactly to the server-side latency. The same TCP port answers
//! [`proto::AdminCommand`] introspection frames (metrics snapshots with
//! exemplars, queue/breaker/cache state, active traces, flight-recorder
//! dumps) — `bin/obsctl` is the matching CLI.
//!
//! ## Resilience
//!
//! The stack self-heals around `ls-fault`'s primitives (see the repository
//! DESIGN.md §4d). A worker panic fails exactly one job (`catch_unwind` +
//! an idempotent completion latch) and the pool respawns dead threads; a
//! circuit breaker ([`ServeConfig::breaker_failures`]) flips dispatch to a
//! model-free [`ls_core::FallbackScorer`] with responses explicitly marked
//! [`RankResponse::degraded`]; torn TCP frames poison one connection, never
//! the listener; and [`TcpRankClient`] reconnects with capped jittered
//! backoff under a [`RetryPolicy`]. Chaos coverage lives in
//! `tests/chaos.rs`: seeded fault plans drive the stack and every request
//! must end in a typed error or a response bit-identical to the fault-free
//! serial path.
//!
//! The `serve-loadgen` binary drives a server with closed-loop clients and
//! reports throughput and latency percentiles; see the repository README.

pub mod cache;
mod evloop;
pub mod online;
pub mod poller;
pub mod proto;
pub mod server;
pub mod tcp;

pub use cache::{LruCache, RankKey};
pub use online::{OnlineOptions, OnlineState};
pub use poller::{Backend, Event, Interest, Poller, Waker};
pub use proto::{frame_error, AdminCommand, Frame, FrameError, Protocol, MAX_FRAME};
pub use server::{
    ModelBundle, RankRequest, RankResponse, ServeConfig, ServeError, ServeHandle, Server,
    StageBreakdown,
};
pub use tcp::{RetryPolicy, TcpOptions, TcpRankClient, TcpServer};

// The tier vocabulary of the SLO answer path, re-exported so clients can
// inspect [`RankResponse::tier`] without depending on `ls-circuit` directly.
pub use ls_circuit::{SloPolicy, Tier};
