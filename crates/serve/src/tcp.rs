//! TCP front-end: an accept loop that speaks the framed JSON protocol of
//! [`crate::proto`] and forwards each request to a [`ServeHandle`].
//!
//! One detached thread per connection; each connection processes its frames
//! sequentially (pipelining across connections comes from the server's own
//! micro-batcher, not from per-connection concurrency). The listener thread
//! is woken for shutdown by a loopback self-connect, so no platform-specific
//! socket APIs are needed.

use crate::proto::{decode_request, encode_response, read_frame, write_frame};
use crate::server::{RankRequest, RankResponse, ServeError, ServeHandle};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front-end.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and start accepting connections,
    /// forwarding requests to `handle`.
    pub fn start(handle: ServeHandle, bind: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("ls-serve-accept".into())
                .spawn(move || accept_loop(listener, handle, &stop))?
        };
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept loop. Connections
    /// already established finish their in-flight frames on their own
    /// threads; pair this with [`crate::Server::shutdown`] to drain them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

fn accept_loop(listener: TcpListener, handle: ServeHandle, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        ls_obs::counter("serve.tcp.connections").incr();
        let handle = handle.clone();
        let _ = std::thread::Builder::new()
            .name("ls-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &handle);
            });
    }
}

fn serve_connection(stream: TcpStream, handle: &ServeHandle) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        ls_obs::counter("serve.tcp.frames").incr();
        let (id, result) = match decode_request(&payload) {
            Ok((id, req)) => (id, handle.rank(req)),
            Err(msg) => (0, Err(ServeError::BadRequest(msg))),
        };
        write_frame(&mut writer, &encode_response(id, &result))?;
    }
    Ok(())
}

/// A blocking client for the framed protocol.
pub struct TcpRankClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl TcpRankClient {
    /// Connect to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpRankClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpRankClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Send one request and block for its response.
    pub fn rank(&mut self, req: &RankRequest) -> Result<RankResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &crate::proto::encode_request(id, req))
            .map_err(|e| ServeError::Transport(e.to_string()))?;
        let payload = read_frame(&mut self.reader)
            .map_err(|e| ServeError::Transport(e.to_string()))?
            .ok_or_else(|| ServeError::Transport("server closed connection".into()))?;
        let (resp_id, result) =
            crate::proto::decode_response(&payload).map_err(ServeError::Transport)?;
        if resp_id != id {
            return Err(ServeError::Transport(format!(
                "response id {resp_id} does not match request id {id}"
            )));
        }
        result
    }
}
