//! TCP front-end: an accept loop that speaks the framed JSON protocol of
//! [`crate::proto`] and forwards each request to a [`ServeHandle`].
//!
//! One detached thread per connection; each connection processes its frames
//! sequentially (pipelining across connections comes from the server's own
//! micro-batcher, not from per-connection concurrency). The listener thread
//! is woken for shutdown by a loopback self-connect, so no platform-specific
//! socket APIs are needed.
//!
//! ## Failure containment
//!
//! A torn or malformed frame poisons exactly one connection: the handler
//! replies with a typed error where it still can (garbage JSON inside a
//! well-formed frame), or closes that connection (corrupt length prefix,
//! mid-frame EOF) — the accept loop and every other connection are
//! untouched. [`TcpRankClient`] is the other half of the story: it
//! reconnects on transport failures with capped, jittered exponential
//! backoff and resends the (idempotent) request under the same id, within
//! an optional overall deadline.

use crate::proto::{
    decode_frame, encode_admin_request, encode_admin_response, encode_feedback_request,
    encode_feedback_response, encode_response, read_frame, write_frame, AdminCommand, Frame,
};
use crate::server::{RankRequest, RankResponse, ServeError, ServeHandle};
use ls_fault::{Backoff, FaultyRead, FaultyWrite, Injector, NoFaults};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running TCP front-end.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and start accepting connections,
    /// forwarding requests to `handle`.
    pub fn start(handle: ServeHandle, bind: impl ToSocketAddrs) -> io::Result<TcpServer> {
        TcpServer::start_with(handle, bind, Arc::new(NoFaults))
    }

    /// [`TcpServer::start`] with a fault injector wrapped around every
    /// connection's reads (`serve.tcp.read`) and writes (`serve.tcp.write`).
    /// Production passes [`NoFaults`]; chaos tests inject torn frames and
    /// I/O errors on the server side of the wire.
    pub fn start_with(
        handle: ServeHandle,
        bind: impl ToSocketAddrs,
        injector: Arc<dyn Injector>,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("ls-serve-accept".into())
                .spawn(move || accept_loop(listener, handle, &stop, injector))?
        };
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept loop. Connections
    /// already established finish their in-flight frames on their own
    /// threads; pair this with [`crate::Server::shutdown`] to drain them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handle: ServeHandle,
    stop: &AtomicBool,
    injector: Arc<dyn Injector>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        ls_obs::counter("serve.tcp.connections").incr();
        let handle = handle.clone();
        let injector = injector.clone();
        let _ = std::thread::Builder::new()
            .name("ls-serve-conn".into())
            .spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let reader =
                    BufReader::new(FaultyRead::new(read_half, injector.clone(), "serve.tcp"));
                let writer = BufWriter::new(FaultyWrite::new(stream, injector, "serve.tcp"));
                // An Err here means this one connection tore (corrupt length
                // prefix, mid-frame EOF, injected I/O fault); it is dropped
                // and every other connection keeps serving.
                if serve_connection(reader, writer, &handle).is_err() {
                    ls_obs::counter("serve.tcp.torn_connections").incr();
                }
            });
    }
}

fn serve_connection<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    handle: &ServeHandle,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut reader)? {
        ls_obs::counter("serve.tcp.frames").incr();
        let frame = match decode_frame(&payload) {
            Ok(Frame::Admin(id, cmd)) => {
                let data = admin_payload(handle, cmd);
                encode_admin_response(id, &data)
            }
            Ok(Frame::Rank(id, req, trace)) => {
                // Adopt the client's wire trace so every server-side span and
                // stage sample carries the client's trace id — one stitched
                // trace across the connection.
                let _wire = trace.as_ref().map(ls_obs::TraceContext::attach);
                let _span = ls_obs::enabled().then(|| ls_obs::span("serve.tcp.request"));
                let result = handle.rank(req);
                let t0 = ls_obs::enabled().then(Instant::now);
                let frame = encode_response(id, &result);
                if let Some(t0) = t0 {
                    // The serialize stage runs after the response object
                    // exists, so it lands in the histogram only — the
                    // breakdown inside the frame cannot include it.
                    crate::server::stage_hists()
                        .serialize
                        .record_traced(t0.elapsed().as_secs_f64(), ls_obs::current_trace_id());
                }
                frame
            }
            Ok(Frame::Feedback(id, rec)) => {
                // Answered inline once the record is crash-durable in the
                // WAL; feedback never enters the ranking pipeline.
                encode_feedback_response(id, &handle.feedback(&rec))
            }
            Err(msg) => {
                // Garbage JSON inside a well-formed frame: answer typed and
                // keep the connection — the framing layer is still in sync.
                ls_obs::counter("serve.tcp.bad_frames").incr();
                encode_response(0, &Err(ServeError::BadRequest(msg)))
            }
        };
        write_frame(&mut writer, &frame)?;
    }
    Ok(())
}

/// Answer one admin query from live server state.
fn admin_payload(handle: &ServeHandle, cmd: AdminCommand) -> String {
    ls_obs::counter("serve.tcp.admin_frames").incr();
    match cmd {
        AdminCommand::Metrics => ls_obs::metrics_json(),
        AdminCommand::State => handle.state_json(),
        AdminCommand::Traces => handle.traces_json(),
        AdminCommand::Recorder => ls_obs::recorder::dump_json(),
    }
}

/// Reconnect-and-resend policy for [`TcpRankClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, connect included (minimum 1).
    pub attempts: u32,
    /// Delay schedule between attempts (capped exponential, jittered).
    pub backoff: Backoff,
    /// Overall per-call budget: once it would be exceeded (sleep included),
    /// remaining attempts are abandoned. `None` = attempts alone bound the
    /// call.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 0),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-resilience client behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// A blocking client for the framed protocol, with transparent reconnect.
///
/// Ranking requests are idempotent (same input, same bit-identical answer),
/// so a transport failure — connection refused, torn frame, server restart
/// — is handled by reconnecting and resending the same request under the
/// same id, per the configured [`RetryPolicy`]. Typed server answers
/// (including server-side errors like `Overloaded`) are final and never
/// retried here: backpressure decisions belong to the caller.
pub struct TcpRankClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
    next_id: u64,
}

impl TcpRankClient {
    /// Connect to a [`TcpServer`] with no retries (fail-fast).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpRankClient> {
        TcpRankClient::connect_with(addr, RetryPolicy::none())
    }

    /// Connect with an explicit retry policy. The initial connection is
    /// attempted eagerly so misconfiguration fails at construction.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> io::Result<TcpRankClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let mut client = TcpRankClient {
            addr,
            policy,
            conn: None,
            next_id: 1,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    fn ensure_conn(&mut self) -> io::Result<&mut (BufReader<TcpStream>, BufWriter<TcpStream>)> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some((reader, BufWriter::new(stream)));
            ls_obs::counter("serve.client.connects").incr();
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// One wire round trip. Any `Err` means the connection state is suspect
    /// and must be torn down before a retry.
    fn attempt(
        &mut self,
        id: u64,
        req: &RankRequest,
        trace: Option<&ls_obs::TraceContext>,
    ) -> io::Result<Result<RankResponse, ServeError>> {
        let (reader, writer) = self.ensure_conn()?;
        write_frame(writer, &crate::proto::encode_request(id, req, trace))?;
        let payload = read_frame(reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        let (resp_id, result) = crate::proto::decode_response(&payload)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        if resp_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {resp_id} does not match request id {id}"),
            ));
        }
        Ok(result)
    }

    /// Send one request and block for its response, reconnecting and
    /// resending on transport failures per the [`RetryPolicy`].
    pub fn rank(&mut self, req: &RankRequest) -> Result<RankResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        // Propagate the caller's ambient trace, or mint a fresh root when
        // telemetry is on and no trace is active — the id the server echoes
        // into its spans and exemplars either way. Untraced when obs is off,
        // keeping the wire bytes identical to the pre-tracing protocol.
        let trace = ls_obs::TraceContext::current()
            .or_else(|| ls_obs::enabled().then(ls_obs::TraceContext::root));
        let _guard = trace.as_ref().map(ls_obs::TraceContext::attach);
        let _span = trace
            .is_some()
            .then(|| ls_obs::span("serve.client.request"));
        let started = Instant::now();
        let attempts = self.policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.policy.backoff.delay(attempt - 1);
                if let Some(budget) = self.policy.deadline {
                    // Deadline-aware: a sleep that lands past the budget is
                    // wasted latency — give up with the last error instead.
                    if started.elapsed() + delay >= budget {
                        break;
                    }
                }
                std::thread::sleep(delay);
                ls_obs::counter("serve.client.retries").incr();
            }
            match self.attempt(id, req, trace.as_ref()) {
                Ok(result) => return result,
                Err(e) => {
                    // Connection state unknown: drop it so the next attempt
                    // starts on a fresh socket (no stale frames possible).
                    self.conn = None;
                    last_err = Some(e);
                }
            }
        }
        let detail = last_err.map_or_else(|| "no attempts made".to_string(), |e| e.to_string());
        Err(ServeError::Transport(format!(
            "gave up after {attempts} attempt(s): {detail}"
        )))
    }

    /// Submit one feedback record to the server's online-learning WAL and
    /// block for its crash-durable log sequence number. Feedback frames are
    /// answered inline by the connection handler and are not retried here:
    /// unlike rank traffic, a resend after a transport failure could append
    /// the record twice (the ack may have been lost, not the append).
    pub fn feedback(&mut self, rec: &ls_core::FeedbackRecord) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let run = |client: &mut Self| -> io::Result<(u64, Result<u64, ServeError>)> {
            let (reader, writer) = client.ensure_conn()?;
            write_frame(writer, &encode_feedback_request(id, rec))?;
            let payload = read_frame(reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
            crate::proto::decode_feedback_response(&payload)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
        };
        match run(self) {
            Ok((resp_id, result)) if resp_id == id => result,
            Ok((resp_id, _)) => {
                self.conn = None;
                Err(ServeError::Transport(format!(
                    "response id {resp_id} does not match request id {id}"
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(ServeError::Transport(e.to_string()))
            }
        }
    }

    /// Run one admin introspection query (metrics, state, traces, recorder)
    /// against the server and return the decoded `data` payload. Admin
    /// queries are served inline by the connection handler — they never
    /// enter the ranking pipeline — and are not retried.
    pub fn admin(&mut self, cmd: AdminCommand) -> Result<ls_obs::Json, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let run = |client: &mut Self| -> io::Result<(u64, ls_obs::Json)> {
            let (reader, writer) = client.ensure_conn()?;
            write_frame(writer, &encode_admin_request(id, cmd))?;
            let payload = read_frame(reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
            crate::proto::decode_admin_response(&payload)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
        };
        match run(self) {
            Ok((resp_id, data)) if resp_id == id => Ok(data),
            Ok((resp_id, _)) => {
                self.conn = None;
                Err(ServeError::Transport(format!(
                    "response id {resp_id} does not match request id {id}"
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(ServeError::Transport(e.to_string()))
            }
        }
    }
}
