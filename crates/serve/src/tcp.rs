//! TCP front-end: a readiness-driven event loop speaking the framed
//! protocols of [`crate::proto`] (JSON and negotiated binary), forwarding
//! each request to a [`ServeHandle`].
//!
//! One blocking acceptor thread sets `TCP_NODELAY`, flips the socket
//! nonblocking, and round-robins it to one of N event-loop **shards**
//! (see [`crate::evloop`]); each shard multiplexes thousands of
//! connections over a [`crate::poller::Poller`] (epoll on Linux, poll(2)
//! fallback) and hands decoded rank requests to the worker pool via
//! [`ServeHandle::rank_async`] — connection count no longer costs a thread
//! apiece, and a single process holds 10k+ concurrent connections.
//!
//! ## Failure containment
//!
//! A torn or malformed frame poisons exactly one connection: the handler
//! replies with a typed error where it still can (garbage inside a
//! well-formed frame, on either protocol), or closes that connection
//! (corrupt length prefix, mid-frame EOF) — the accept loop and every
//! other connection are untouched. [`TcpRankClient`] is the other half of
//! the story: it reconnects on transport failures with capped, jittered
//! exponential backoff and resends the (idempotent) request under the same
//! id, within an optional overall deadline. A binary-preferring client
//! that meets a legacy JSON-only server falls back to JSON once and stays
//! there (sticky), so mixed fleets upgrade without a flag day.

use crate::evloop::{self, Inbound, Mailbox};
use crate::poller::{wake_pair, Backend};
use crate::proto::{
    self, decode_hello, encode_admin_request, encode_feedback_request, encode_hello, read_frame,
    write_frame, AdminCommand, Protocol, BINARY_VERSION, HELLO_LEN,
};
use crate::server::{RankRequest, RankResponse, ServeError, ServeHandle};
use ls_fault::{Backoff, Injector, NoFaults};
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the event-loop front-end. The defaults suit tests and
/// small machines; `LS_EVLOOP_SHARDS` overrides the shard count without a
/// code change.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Event-loop shard (thread) count, minimum 1.
    pub shards: usize,
    /// Poller backend; `None` picks the platform default (epoll on Linux,
    /// honoring the `LS_POLLER=poll` override).
    pub backend: Option<Backend>,
    /// Per-connection unsent-bytes bound above which reading pauses
    /// (write backpressure).
    pub high_water: usize,
    /// Resume reading once the unsent backlog drains below this.
    pub low_water: usize,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        let shards = std::env::var("LS_EVLOOP_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
                    .min(4)
            })
            .max(1);
        TcpOptions {
            shards,
            backend: None,
            high_water: 1 << 20,
            low_water: 64 << 10,
        }
    }
}

/// A running TCP front-end.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    mailboxes: Vec<Arc<Mailbox>>,
}

impl TcpServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and start accepting connections,
    /// forwarding requests to `handle`.
    pub fn start(handle: ServeHandle, bind: impl ToSocketAddrs) -> io::Result<TcpServer> {
        TcpServer::start_with(handle, bind, Arc::new(NoFaults))
    }

    /// [`TcpServer::start`] with a fault injector wrapped around every
    /// connection's reads (`serve.tcp.read`) and writes (`serve.tcp.write`).
    /// Production passes [`NoFaults`]; chaos tests inject torn frames and
    /// I/O errors on the server side of the wire.
    pub fn start_with(
        handle: ServeHandle,
        bind: impl ToSocketAddrs,
        injector: Arc<dyn Injector>,
    ) -> io::Result<TcpServer> {
        TcpServer::start_opts(handle, bind, injector, TcpOptions::default())
    }

    /// Full-control constructor: explicit shard count, poller backend, and
    /// backpressure watermarks.
    pub fn start_opts(
        handle: ServeHandle,
        bind: impl ToSocketAddrs,
        injector: Arc<dyn Injector>,
        opts: TcpOptions,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::new();
        let mut mailboxes = Vec::new();
        for shard in 0..opts.shards.max(1) {
            let (waker, wake_rx) = wake_pair()?;
            let mailbox = Arc::new(Mailbox::new(shard, waker));
            mailboxes.push(mailbox.clone());
            let handle = handle.clone();
            let injector = injector.clone();
            let stop = stop.clone();
            let opts = opts.clone();
            shards.push(
                std::thread::Builder::new()
                    .name(format!("ls-serve-loop-{shard}"))
                    .spawn(move || {
                        evloop::shard_loop(shard, handle, injector, mailbox, wake_rx, stop, opts)
                    })?,
            );
        }
        let acceptor = {
            let stop = stop.clone();
            let mailboxes = mailboxes.clone();
            std::thread::Builder::new()
                .name("ls-serve-accept".into())
                .spawn(move || accept_loop(listener, &mailboxes, &stop))?
        };
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            shards,
            mailboxes,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every shard, and join all front-end threads.
    /// Responses already being computed by the worker pool are dropped at
    /// the wire (their connections close); pair with
    /// [`crate::Server::shutdown`] to drain the pipeline itself.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for mb in &self.mailboxes {
            mb.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

/// TCP_NODELAY is on by default (`LS_NODELAY=0` disables it, existing only
/// so the effect stays measurable — see EXPERIMENTS.md).
fn nodelay() -> bool {
    std::env::var("LS_NODELAY").map_or(true, |v| v != "0")
}

fn accept_loop(listener: TcpListener, mailboxes: &[Arc<Mailbox>], stop: &AtomicBool) {
    let mut rr = 0usize;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        ls_obs::counter("serve.tcp.connections").incr();
        // NODELAY before the socket ever carries a frame: request/response
        // frames are far smaller than an MTU, and Nagle would otherwise
        // serialize them behind delayed ACKs (p99 effect measured in
        // EXPERIMENTS.md).
        if nodelay() {
            let _ = stream.set_nodelay(true);
        }
        mailboxes[rr % mailboxes.len()].push(Inbound::Conn(stream));
        rr = rr.wrapping_add(1);
    }
}

/// Reconnect-and-resend policy for [`TcpRankClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, connect included (minimum 1).
    pub attempts: u32,
    /// Delay schedule between attempts (capped exponential, jittered).
    pub backoff: Backoff,
    /// Overall per-call budget: once it would be exceeded (sleep included),
    /// remaining attempts are abandoned. `None` = attempts alone bound the
    /// call.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 0),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-resilience client behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// A blocking client for the framed protocols, with transparent reconnect.
///
/// Ranking requests are idempotent (same input, same bit-identical answer),
/// so a transport failure — connection refused, torn frame, server restart
/// — is handled by reconnecting and resending the same request under the
/// same id, per the configured [`RetryPolicy`]. Typed server answers
/// (including server-side errors like `Overloaded`) are final and never
/// retried here: backpressure decisions belong to the caller.
///
/// The client speaks JSON by default. [`TcpRankClient::connect_binary`]
/// (or [`connect_opts`](TcpRankClient::connect_opts) with
/// [`Protocol::Binary`]) opens with the `LSBP` hello; if the server does
/// not ack — a legacy JSON-only peer closes the connection on the
/// magic's oversized pseudo-length — the client reconnects plain and
/// *stays* on JSON for its lifetime, so every later reconnect skips the
/// doomed hello.
pub struct TcpRankClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    prefer: Protocol,
    /// Protocol of the *current* connection (`prefer` modulo fallback).
    active: Protocol,
    /// Set after a failed binary hello: never negotiate again.
    json_fallback: bool,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
    next_id: u64,
}

impl TcpRankClient {
    /// Connect to a [`TcpServer`] with no retries (fail-fast), JSON.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpRankClient> {
        TcpRankClient::connect_opts(addr, RetryPolicy::none(), Protocol::Json)
    }

    /// Connect with an explicit retry policy, JSON.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> io::Result<TcpRankClient> {
        TcpRankClient::connect_opts(addr, policy, Protocol::Json)
    }

    /// Connect preferring the binary protocol (falls back to JSON against
    /// a legacy server), no retries.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> io::Result<TcpRankClient> {
        TcpRankClient::connect_opts(addr, RetryPolicy::none(), Protocol::Binary)
    }

    /// Connect with an explicit retry policy and protocol preference. The
    /// initial connection is attempted eagerly so misconfiguration fails at
    /// construction.
    pub fn connect_opts(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        prefer: Protocol,
    ) -> io::Result<TcpRankClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let mut client = TcpRankClient {
            addr,
            policy,
            prefer,
            active: Protocol::Json,
            json_fallback: false,
            conn: None,
            next_id: 1,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The protocol the current (or next) connection speaks — after a
    /// sticky fallback this reports [`Protocol::Json`] even for a
    /// binary-preferring client.
    pub fn protocol(&self) -> Protocol {
        if self.conn.is_some() {
            self.active
        } else if self.json_fallback {
            Protocol::Json
        } else {
            self.prefer
        }
    }

    fn ensure_conn(&mut self) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut stream = TcpStream::connect(self.addr)?;
        if nodelay() {
            stream.set_nodelay(true)?;
        }
        self.active = Protocol::Json;
        if self.prefer == Protocol::Binary && !self.json_fallback {
            match negotiate(&mut stream) {
                Ok(()) => self.active = Protocol::Binary,
                Err(_) => {
                    // Legacy server: it saw our magic as an oversized frame
                    // and closed. Reconnect plain and never negotiate with
                    // this address again.
                    ls_obs::counter("serve.client.binary_fallback").incr();
                    self.json_fallback = true;
                    stream = TcpStream::connect(self.addr)?;
                    if nodelay() {
                        stream.set_nodelay(true)?;
                    }
                }
            }
        }
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some((reader, stream));
        ls_obs::counter("serve.client.connects").incr();
        Ok(())
    }

    /// One wire round trip. Any `Err` means the connection state is suspect
    /// and must be torn down before a retry.
    fn attempt(
        &mut self,
        id: u64,
        req: &RankRequest,
        trace: Option<&ls_obs::TraceContext>,
    ) -> io::Result<Result<RankResponse, ServeError>> {
        self.ensure_conn()?;
        let active = self.active;
        let (reader, writer) = self.conn.as_mut().expect("connection just established");
        let payload = match active {
            Protocol::Json => {
                write_frame(writer, &proto::encode_request(id, req, trace))?;
                read_frame(reader)?
            }
            Protocol::Binary => {
                // Binary encoders emit prefix+payload in one buffer — a
                // single write_all, no vectored assembly needed.
                writer.write_all(&proto::encode_binary_request(id, req, trace))?;
                read_frame(reader)?
            }
        }
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))?;
        let (resp_id, result) = match active {
            Protocol::Json => proto::decode_response(&payload)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?,
            Protocol::Binary => proto::decode_binary_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        };
        if resp_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {resp_id} does not match request id {id}"),
            ));
        }
        Ok(result)
    }

    /// Send one request and block for its response, reconnecting and
    /// resending on transport failures per the [`RetryPolicy`].
    pub fn rank(&mut self, req: &RankRequest) -> Result<RankResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        // Propagate the caller's ambient trace, or mint a fresh root when
        // telemetry is on and no trace is active — the id the server echoes
        // into its spans and exemplars either way. Untraced when obs is off,
        // keeping the wire bytes identical to the pre-tracing protocol.
        let trace = ls_obs::TraceContext::current()
            .or_else(|| ls_obs::enabled().then(ls_obs::TraceContext::root));
        let _guard = trace.as_ref().map(ls_obs::TraceContext::attach);
        let _span = trace
            .is_some()
            .then(|| ls_obs::span("serve.client.request"));
        let started = Instant::now();
        let attempts = self.policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.policy.backoff.delay(attempt - 1);
                if let Some(budget) = self.policy.deadline {
                    // Deadline-aware: a sleep that lands past the budget is
                    // wasted latency — give up with the last error instead.
                    if started.elapsed() + delay >= budget {
                        break;
                    }
                }
                std::thread::sleep(delay);
                ls_obs::counter("serve.client.retries").incr();
            }
            match self.attempt(id, req, trace.as_ref()) {
                Ok(result) => return result,
                Err(e) => {
                    // Connection state unknown: drop it so the next attempt
                    // starts on a fresh socket (no stale frames possible).
                    self.conn = None;
                    last_err = Some(e);
                }
            }
        }
        let detail = last_err.map_or_else(|| "no attempts made".to_string(), |e| e.to_string());
        Err(ServeError::Transport(format!(
            "gave up after {attempts} attempt(s): {detail}"
        )))
    }

    /// Submit one feedback record to the server's online-learning WAL and
    /// block for its crash-durable log sequence number. Feedback frames are
    /// answered inline by the connection handler and are not retried here:
    /// unlike rank traffic, a resend after a transport failure could append
    /// the record twice (the ack may have been lost, not the append).
    pub fn feedback(&mut self, rec: &ls_core::FeedbackRecord) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let run = |client: &mut Self| -> io::Result<(u64, Result<u64, ServeError>)> {
            client.ensure_conn()?;
            let active = client.active;
            let (reader, writer) = client.conn.as_mut().expect("connection just established");
            let payload = match active {
                Protocol::Json => {
                    write_frame(writer, &encode_feedback_request(id, rec))?;
                    read_frame(reader)?
                }
                Protocol::Binary => {
                    writer.write_all(&proto::encode_binary_feedback_request(id, rec))?;
                    read_frame(reader)?
                }
            }
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
            match active {
                Protocol::Json => proto::decode_feedback_response(&payload)
                    .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m)),
                Protocol::Binary => proto::decode_binary_feedback_response(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        };
        match run(self) {
            Ok((resp_id, result)) if resp_id == id => result,
            Ok((resp_id, _)) => {
                self.conn = None;
                Err(ServeError::Transport(format!(
                    "response id {resp_id} does not match request id {id}"
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(ServeError::Transport(e.to_string()))
            }
        }
    }

    /// Run one admin introspection query (metrics, state, traces, recorder)
    /// against the server and return the decoded `data` payload. Admin
    /// queries are served inline by the connection handler — they never
    /// enter the ranking pipeline — and are not retried.
    pub fn admin(&mut self, cmd: AdminCommand) -> Result<ls_obs::Json, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let run = |client: &mut Self| -> io::Result<(u64, ls_obs::Json)> {
            client.ensure_conn()?;
            let active = client.active;
            let (reader, writer) = client.conn.as_mut().expect("connection just established");
            let payload = match active {
                Protocol::Json => {
                    write_frame(writer, &encode_admin_request(id, cmd))?;
                    read_frame(reader)?
                }
                Protocol::Binary => {
                    writer.write_all(&proto::encode_binary_admin_request(id, cmd))?;
                    read_frame(reader)?
                }
            }
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
            match active {
                Protocol::Json => proto::decode_admin_response(&payload)
                    .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m)),
                Protocol::Binary => proto::decode_binary_admin_response(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        };
        match run(self) {
            Ok((resp_id, data)) if resp_id == id => Ok(data),
            Ok((resp_id, _)) => {
                self.conn = None;
                Err(ServeError::Transport(format!(
                    "response id {resp_id} does not match request id {id}"
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(ServeError::Transport(e.to_string()))
            }
        }
    }
}

/// Client side of the version handshake: send hello, require a well-formed
/// ack. Any failure (EOF from a legacy server, garbage, version 0) makes
/// the caller fall back to JSON on a fresh socket.
fn negotiate(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(&encode_hello(BINARY_VERSION))?;
    let mut ack = [0u8; HELLO_LEN];
    stream.read_exact(&mut ack)?;
    let version = decode_hello(&ack)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if version != BINARY_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server chose unsupported version {version}"),
        ));
    }
    Ok(())
}
