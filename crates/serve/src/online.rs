//! The serving-side online-learning engine: feedback WAL ingestion, the
//! background trainer thread, and zero-downtime snapshot hot-swap.
//!
//! ```text
//!  client ──feedback()──▶ ls-wal append+fsync ──▶ acked LSN
//!                               │
//!                    trainer thread (poll):
//!                      replay from watermark ─▶ OnlineTrainer batches
//!                               │ every publish_every records
//!                      publish snapshot ─▶ CURRENT ─▶ swap_model()
//! ```
//!
//! Crash story, end to end: feedback is acknowledged only after its WAL
//! fsync; the trainer's watermark rides in its `Stage::Online` checkpoint;
//! snapshots and the `CURRENT` pointer are written crash-atomically. Kill
//! the process at any byte and restart: [`Server::enable_online`] reloads
//! `CURRENT` (hot-swapping the last published weights in), the trainer
//! resumes from its checkpoint, and WAL replay re-delivers exactly the
//! acked records after its watermark — same batches, same boundaries,
//! bit-identical weights to a run that never crashed.

use crate::server::{ModelBundle, ServeError, ServeHandle, Server};
use ls_core::{FeedbackRecord, OnlineTrainer};
use ls_fault::lock_safe;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for [`Server::enable_online`].
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Directory of the feedback WAL (created if missing).
    pub wal_dir: PathBuf,
    /// Directory snapshots and the trainer checkpoint are published into.
    pub snapshot_dir: PathBuf,
    /// Publish + hot-swap after this many newly trained records (0 = ingest
    /// and train but never auto-publish; [`ServeHandle::swap_model`] stays
    /// available for manual swaps).
    pub publish_every: u64,
    /// Trainer poll interval between WAL scans.
    pub poll: Duration,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        OnlineOptions {
            wal_dir: PathBuf::from("wal"),
            snapshot_dir: PathBuf::from("snapshots"),
            publish_every: 64,
            poll: Duration::from_millis(20),
        }
    }
}

/// Shared state of the online engine: the WAL writer (client appends) plus
/// the trainer thread's lifecycle and progress counters.
pub struct OnlineState {
    wal: Mutex<ls_wal::Wal>,
    opts: OnlineOptions,
    appended: AtomicU64,
    trained: AtomicU64,
    published_generation: AtomicU64,
    stop: AtomicBool,
    trainer: Mutex<Option<JoinHandle<()>>>,
}

impl OnlineState {
    /// Append one feedback record; the returned LSN is crash-durable.
    ///
    /// The TCP event-loop shards answer feedback frames inline, so the
    /// append+fsync below runs on a shard thread and stalls every
    /// connection that shard owns for its duration. The
    /// `serve.feedback.append` histogram keeps that cost visible.
    pub(crate) fn append(&self, rec: &FeedbackRecord) -> Result<u64, ServeError> {
        let t0 = ls_obs::enabled().then(std::time::Instant::now);
        let mut wal = lock_safe(&self.wal);
        match wal.append(&rec.encode()) {
            Ok(lsn) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
                ls_obs::counter("serve.feedback.accepted").incr();
                if let Some(t0) = t0 {
                    ls_obs::histogram("serve.feedback.append")
                        .record_traced(t0.elapsed().as_secs_f64(), ls_obs::current_trace_id());
                }
                Ok(lsn)
            }
            Err(e) => {
                ls_obs::counter("serve.feedback.rejected").incr();
                Err(ServeError::Internal(format!("feedback wal: {e}")))
            }
        }
    }

    /// Progress as a JSON object for the admin `state` answer.
    pub(crate) fn status_json(&self) -> String {
        format!(
            "{{\"appended\":{},\"trained\":{},\"published_generation\":{}}}",
            self.appended.load(Ordering::Relaxed),
            self.trained.load(Ordering::Relaxed),
            self.published_generation.load(Ordering::Relaxed),
        )
    }

    /// Records accepted into the WAL since this engine started.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Records consumed by completed optimizer steps.
    pub fn trained(&self) -> u64 {
        self.trained.load(Ordering::Relaxed)
    }

    /// Generation of the last snapshot this engine published (0 = none).
    pub fn published_generation(&self) -> u64 {
        self.published_generation.load(Ordering::Relaxed)
    }

    /// Signal the trainer thread and join it (idempotent).
    pub(crate) fn stop_and_join(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = lock_safe(&self.trainer).take() {
            let _ = h.join();
        }
    }
}

impl Server {
    /// Attach the online-learning engine: open (recovering) the feedback
    /// WAL, hot-swap in the last published snapshot if one exists, resume
    /// the trainer from its checkpoint, and start the background training
    /// loop. Returns the engine handle; fails typed if called twice.
    ///
    /// `trainer` carries the model the online loop continues from; when a
    /// published snapshot or trainer checkpoint exists on disk, recovery
    /// state overrides the passed-in weights.
    pub fn enable_online(
        &self,
        mut trainer: OnlineTrainer,
        opts: OnlineOptions,
    ) -> io::Result<Arc<OnlineState>> {
        let handle = self.handle();
        std::fs::create_dir_all(&opts.snapshot_dir)?;
        let wal = ls_wal::Wal::open_with(
            &opts.wal_dir,
            ls_wal::WalOptions::default(),
            self.injector(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

        // Crash recovery, reader side: hot-swap the last published snapshot
        // so serving resumes on the newest trained weights immediately.
        let mut published = 0u64;
        if let Some((generation, path)) = ls_core::load_current(&opts.snapshot_dir)? {
            let (cur, _) = handle.current_model();
            let bundle = ModelBundle::load(&path, cur.db.clone(), cur.max_len)?;
            handle.swap_model(Arc::new(bundle));
            published = generation;
        }
        // Crash recovery, trainer side: the checkpoint restores weights,
        // optimizer moments, and the WAL watermark.
        let ck_path = opts.snapshot_dir.join("trainer.lstc");
        trainer.resume(&ck_path)?;

        let state = Arc::new(OnlineState {
            wal: Mutex::new(wal),
            opts: opts.clone(),
            appended: AtomicU64::new(0),
            trained: AtomicU64::new(trainer.consumed()),
            published_generation: AtomicU64::new(published),
            stop: AtomicBool::new(false),
            trainer: Mutex::new(None),
        });
        // Attach before spawning: a second enable_online must fail without
        // ever starting a rogue trainer thread.
        self.attach_online(state.clone()).map_err(|()| {
            io::Error::new(
                io::ErrorKind::AlreadyExists,
                "online learning already enabled",
            )
        })?;
        let thread_state = state.clone();
        let thread = std::thread::Builder::new()
            .name("ls-serve-trainer".into())
            .spawn(move || trainer_loop(&thread_state, trainer, handle, published))
            .expect("spawn online trainer");
        *lock_safe(&state.trainer) = Some(thread);
        Ok(state)
    }
}

/// The background training loop: poll the WAL, train complete batches,
/// publish + hot-swap every `publish_every` newly consumed records.
fn trainer_loop(
    state: &Arc<OnlineState>,
    mut trainer: OnlineTrainer,
    handle: ServeHandle,
    mut generation: u64,
) {
    let opts = &state.opts;
    let ck_path = opts.snapshot_dir.join("trainer.lstc");
    let mut last_published = trainer.consumed();
    while !state.stop.load(Ordering::Acquire) {
        // Read-only replay is safe concurrently with the live writer: the
        // writer's unsynced tail parses as torn and is simply not yet
        // visible. Records below the trainer watermark are skipped by
        // `ingest`.
        match ls_wal::replay(&opts.wal_dir) {
            Ok((records, _)) => {
                for (lsn, payload) in records {
                    match FeedbackRecord::decode(&payload) {
                        Ok(rec) => trainer.ingest(lsn, rec),
                        Err(_) => {
                            // An undecodable record is a poisoned producer,
                            // not a torn write (the WAL frame CRC passed);
                            // count it and keep the stream moving.
                            ls_obs::counter("serve.feedback.undecodable").incr();
                            trainer.ingest(
                                lsn,
                                FeedbackRecord {
                                    query_sql: String::new(),
                                    tuple_fact: String::new(),
                                    target: 0.0,
                                },
                            );
                        }
                    }
                }
            }
            Err(_) => {
                ls_obs::counter("serve.feedback.replay_errors").incr();
            }
        }
        trainer.train_pending();
        state.trained.store(trainer.consumed(), Ordering::Relaxed);
        if opts.publish_every > 0 && trainer.consumed() - last_published >= opts.publish_every {
            generation += 1;
            let swapped = trainer
                .checkpoint(&ck_path)
                .and_then(|()| trainer.publish(&opts.snapshot_dir, generation))
                .and_then(|path| {
                    let (cur, _) = handle.current_model();
                    ModelBundle::load(&path, cur.db.clone(), cur.max_len)
                });
            match swapped {
                Ok(bundle) => {
                    handle.swap_model(Arc::new(bundle));
                    state
                        .published_generation
                        .store(generation, Ordering::Relaxed);
                    last_published = trainer.consumed();
                }
                Err(_) => {
                    // Publication failed (disk fault): the serving path is
                    // untouched — old snapshot keeps answering — and the
                    // next cycle retries at the same generation.
                    generation -= 1;
                    ls_obs::counter("serve.feedback.publish_errors").incr();
                }
            }
        }
        // Bounded catnap so shutdown never waits longer than `poll`.
        std::thread::sleep(opts.poll);
    }
    // Terminal checkpoint so a clean shutdown resumes exactly here.
    let _ = trainer.checkpoint(&ck_path);
}
