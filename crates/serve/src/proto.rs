//! Framed wire protocols for the TCP front-end: JSON and binary.
//!
//! Every message is a **frame**: a little-endian `u32` byte length followed
//! by that many payload bytes. Frames above [`MAX_FRAME`] bytes are
//! rejected (a corrupt length prefix must not make the server allocate 4 GiB).
//!
//! Two payload encodings share that framing:
//!
//! * **JSON** (the original protocol, still the default) — UTF-8 JSON
//!   objects, documented below. Legacy clients speak this with no
//!   preamble: their first four bytes are a length prefix.
//! * **Binary** (`LSBP`, version-negotiated) — little-endian fixed-width
//!   fields, length-prefixed strings, `f64` scores as raw bits (the same
//!   idiom as the `ls-circuit` `LSCS` store). A binary client opens with
//!   the magic `LSBP` + its highest supported version; the server answers
//!   with the magic + the version it chose. Read as a `u32` length prefix
//!   the magic is ~1.25 GiB — far above [`MAX_FRAME`] — so no legal JSON
//!   frame can ever be mistaken for a hello, and a legacy JSON server
//!   that receives one simply tears the connection, which the client
//!   detects and falls back to JSON. See `decode_binary_frame` and
//!   DESIGN.md §4j for the frame layouts.
//!
//! Request object:
//!
//! ```json
//! {"id": 7, "query": "SELECT …", "tuple": ["Alice", 3],
//!  "lineage": [0, 12, 31], "deadline_ms": 250}
//! ```
//!
//! `tuple` holds the output tuple's values — JSON strings become
//! `Value::Str`, JSON numbers become `Value::Int` (the relational layer has
//! no float column type). `deadline_ms` is optional, as are the tier-path
//! extras: `slo_us` (accuracy–latency budget) and `derivations` (the
//! tuple's provenance, one array of fact ids per derivation). Responses
//! answered by the tiered path carry `"tier":"exact"|"learned"|"sampled"`.
//!
//! Response object (success / failure):
//!
//! ```json
//! {"id": 7, "ok": true, "cached": false,
//!  "scores": [0.91, 0.13, 0.42], "ranking": [0, 31, 12]}
//! {"id": 7, "ok": false, "error": "overloaded"}
//! ```
//!
//! Scores are emitted with Rust's shortest-round-trip `f64` formatting and
//! parsed back with a correctly-rounded parser, so the floats a TCP client
//! receives are bit-identical to the in-process [`crate::RankResponse`] —
//! the determinism invariant survives the wire.

use crate::server::{RankRequest, RankResponse, ServeError, StageBreakdown};
use ls_circuit::Tier;
use ls_core::FeedbackRecord;
use ls_obs::{Json, TraceContext};
use ls_relational::{FactId, Monomial, OutputTuple, Value};
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Upper bound on a single frame's payload (16 MiB).
pub const MAX_FRAME: u32 = 16 << 20;

/// A typed framing or binary-decoding failure. Carried as the payload of an
/// `io::Error` where it must survive `io::Result` plumbing; recover it with
/// [`frame_error`]. The binary decoder returns it directly — hostile bytes
/// always yield one of these, never a panic or oversized allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared payload length exceeds [`MAX_FRAME`] — a corrupt or
    /// hostile length prefix must not drive a multi-gigabyte allocation.
    TooLarge {
        /// The length the frame header declared.
        len: u64,
        /// The cap it exceeded ([`MAX_FRAME`]).
        cap: u32,
    },
    /// A binary payload ended before a field it declared; `need` more bytes
    /// were required, `have` remained. Counts are validated against the
    /// remaining bytes *before* any allocation, so a hostile count field
    /// costs nothing.
    Truncated {
        /// Bytes the next field required.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A binary payload was structurally invalid (bad tag, non-UTF-8
    /// string, trailing bytes, …). The label names the offending field.
    Malformed(&'static str),
    /// The leading frame-kind byte is not one this peer understands.
    UnsupportedKind(u8),
    /// A hello carried a protocol version this peer cannot speak.
    UnsupportedVersion(u16),
    /// The connection preamble did not start with the `LSBP` magic.
    BadMagic([u8; 4]),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, cap } => {
                write!(f, "frame length {len} exceeds cap {cap}")
            }
            FrameError::Truncated { need, have } => {
                write!(
                    f,
                    "binary payload truncated: need {need} bytes, have {have}"
                )
            }
            FrameError::Malformed(what) => write!(f, "malformed binary payload: {what}"),
            FrameError::UnsupportedKind(k) => write!(f, "unsupported frame kind {k}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadMagic(m) => write!(f, "bad protocol magic {m:02x?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Recover the typed [`FrameError`] from an `io::Error`, if it carries one.
pub fn frame_error(e: &io::Error) -> Option<&FrameError> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

/// Write one length-prefixed frame.
///
/// Prefix and payload go out in a single vectored write where the sink
/// allows it (one syscall on a raw `TcpStream`, no copy of the payload into
/// a prefixed buffer); short vectored writes fall back to `write_all` for
/// the remainder.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge {
                len: payload.len() as u64,
                cap: MAX_FRAME,
            },
        ));
    }
    let prefix = (payload.len() as u32).to_le_bytes();
    let mut sent = 0usize; // bytes of prefix+payload written so far
    while sent < 4 {
        let n =
            w.write_vectored(&[io::IoSlice::new(&prefix[sent..]), io::IoSlice::new(payload)])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write frame prefix",
            ));
        }
        sent += n;
    }
    w.write_all(&payload[sent - 4..])?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge {
                len: len as u64,
                cap: MAX_FRAME,
            },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode a request frame payload. When `trace` is given, the frame carries
/// the client's trace identity (`{"trace":{"id":"…","span":"…"}}`, 16-digit
/// hex — JSON numbers are f64 and would round 64-bit ids) so server-side
/// spans stitch into the client's trace.
pub fn encode_request(id: u64, req: &RankRequest, trace: Option<&TraceContext>) -> Vec<u8> {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id}");
    if let Some(ctx) = trace {
        let _ = write!(
            out,
            ",\"trace\":{{\"id\":\"{}\",\"span\":\"{}\"}}",
            ctx.trace_hex(),
            ctx.span_hex()
        );
    }
    out.push_str(",\"query\":");
    emit_str(&mut out, &req.query_sql);
    out.push_str(",\"tuple\":[");
    for (i, v) in req.tuple.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => emit_str(&mut out, s),
        }
    }
    out.push_str("],\"lineage\":[");
    for (i, f) in req.lineage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", f.0);
    }
    out.push(']');
    if let Some(d) = req.deadline {
        let _ = write!(out, ",\"deadline_ms\":{}", d.as_millis());
    }
    // Tier-path extras, both optional so pre-tier peers interoperate: the
    // accuracy-latency budget and the tuple's provenance (one array of fact
    // ids per derivation), which the exact and sampled tiers require.
    if let Some(slo) = req.slo {
        let _ = write!(out, ",\"slo_us\":{}", slo.as_micros());
    }
    if !req.tuple.derivations.is_empty() {
        out.push_str(",\"derivations\":[");
        for (i, m) in req.tuple.derivations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, f) in m.facts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", f.0);
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push('}');
    out.into_bytes()
}

/// An introspection query carried on the same TCP port as rank traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminCommand {
    /// Full metrics snapshot (counters, gauges, histograms + exemplars).
    Metrics,
    /// Queue/pool/cache/breaker operational state.
    State,
    /// Active traced requests and their stage progress.
    Traces,
    /// Flight-recorder ring contents.
    Recorder,
}

impl AdminCommand {
    /// The wire keyword for this command.
    pub fn keyword(self) -> &'static str {
        match self {
            AdminCommand::Metrics => "metrics",
            AdminCommand::State => "state",
            AdminCommand::Traces => "traces",
            AdminCommand::Recorder => "recorder",
        }
    }

    /// Parse a wire keyword.
    pub fn from_keyword(s: &str) -> Option<AdminCommand> {
        match s {
            "metrics" => Some(AdminCommand::Metrics),
            "state" => Some(AdminCommand::State),
            "traces" => Some(AdminCommand::Traces),
            "recorder" => Some(AdminCommand::Recorder),
            _ => None,
        }
    }
}

/// One decoded inbound frame: rank traffic (with its optional client trace),
/// an admin introspection query, or an online-learning feedback record —
/// multiplexed by the `"admin"` and `"feedback"` keys.
#[derive(Debug)]
pub enum Frame {
    /// A ranking request and the trace context it carried, if any.
    Rank(u64, RankRequest, Option<TraceContext>),
    /// An admin query.
    Admin(u64, AdminCommand),
    /// A feedback record for the online-learning WAL.
    Feedback(u64, FeedbackRecord),
}

/// Decode any inbound frame (rank, admin, or feedback).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    if let Some(kw) = doc.get("admin").and_then(Json::as_str) {
        let cmd = AdminCommand::from_keyword(kw).ok_or_else(|| format!("unknown admin {kw:?}"))?;
        return Ok(Frame::Admin(id, cmd));
    }
    if let Some(fb) = doc.get("feedback") {
        let query_sql = fb
            .get("query")
            .and_then(Json::as_str)
            .ok_or("feedback missing string \"query\"")?
            .to_string();
        let tuple_fact = fb
            .get("fact")
            .and_then(Json::as_str)
            .ok_or("feedback missing string \"fact\"")?
            .to_string();
        let target = fb
            .get("target")
            .and_then(Json::as_f64)
            .ok_or("feedback missing numeric \"target\"")? as f32;
        return Ok(Frame::Feedback(
            id,
            FeedbackRecord {
                query_sql,
                tuple_fact,
                target,
            },
        ));
    }
    let trace = doc.get("trace").and_then(|t| {
        TraceContext::from_hex(
            t.get("id").and_then(Json::as_str)?,
            t.get("span").and_then(Json::as_str),
        )
    });
    let req = decode_rank_body(&doc)?;
    Ok(Frame::Rank(id, req, trace))
}

/// Decode a request frame payload into `(id, request)`, rejecting admin
/// frames. Retained for peers that speak only rank traffic.
pub fn decode_request(payload: &[u8]) -> Result<(u64, RankRequest), String> {
    match decode_frame(payload)? {
        Frame::Rank(id, req, _) => Ok((id, req)),
        Frame::Admin(..) => Err("admin frame where a rank request was expected".into()),
        Frame::Feedback(..) => Err("feedback frame where a rank request was expected".into()),
    }
}

fn decode_rank_body(doc: &Json) -> Result<RankRequest, String> {
    let query_sql = doc
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string \"query\"")?
        .to_string();
    let mut values = Vec::new();
    if let Some(Json::Arr(items)) = doc.get("tuple") {
        for item in items {
            match item {
                Json::Str(s) => values.push(Value::Str(s.clone())),
                Json::Num(n) => values.push(Value::Int(*n as i64)),
                other => return Err(format!("bad tuple value {other:?}")),
            }
        }
    } else {
        return Err("missing array \"tuple\"".into());
    }
    let mut lineage = Vec::new();
    if let Some(Json::Arr(items)) = doc.get("lineage") {
        for item in items {
            let n = item.as_u64().ok_or("lineage entries must be fact ids")?;
            if n > u32::MAX as u64 {
                return Err(format!("fact id {n} out of range"));
            }
            lineage.push(FactId(n as u32));
        }
    } else {
        return Err("missing array \"lineage\"".into());
    }
    let deadline = doc
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis);
    let slo = doc
        .get("slo_us")
        .and_then(Json::as_u64)
        .map(Duration::from_micros);
    let mut derivations = Vec::new();
    if let Some(Json::Arr(monos)) = doc.get("derivations") {
        for mono in monos {
            let Json::Arr(ids) = mono else {
                return Err("derivations must be arrays of fact ids".into());
            };
            let mut facts = Vec::with_capacity(ids.len());
            for item in ids {
                let n = item.as_u64().ok_or("derivation entries must be fact ids")?;
                if n > u32::MAX as u64 {
                    return Err(format!("fact id {n} out of range"));
                }
                facts.push(FactId(n as u32));
            }
            derivations.push(Monomial::from_facts(facts));
        }
    }
    Ok(RankRequest {
        query_sql,
        tuple: OutputTuple {
            values,
            derivations,
        },
        lineage,
        deadline,
        slo,
    })
}

/// Encode a feedback frame payload. `target` uses shortest-round-trip `f32`
/// formatting, so the record the server appends to its WAL is bit-identical
/// to the one the client held.
pub fn encode_feedback_request(id: u64, rec: &FeedbackRecord) -> Vec<u8> {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id},\"feedback\":{{\"query\":");
    emit_str(&mut out, &rec.query_sql);
    out.push_str(",\"fact\":");
    emit_str(&mut out, &rec.tuple_fact);
    if rec.target.is_finite() {
        let _ = write!(out, ",\"target\":{}", rec.target);
    } else {
        out.push_str(",\"target\":null");
    }
    out.push_str("}}");
    out.into_bytes()
}

/// Encode a feedback response: on success the record's crash-durable log
/// sequence number, on failure the typed error.
pub fn encode_feedback_response(id: u64, result: &Result<u64, ServeError>) -> Vec<u8> {
    let mut out = String::new();
    encode_feedback_response_into(&mut out, id, result);
    out.into_bytes()
}

/// [`encode_feedback_response`] into a reusable scratch buffer.
pub fn encode_feedback_response_into(out: &mut String, id: u64, result: &Result<u64, ServeError>) {
    out.clear();
    match result {
        Ok(lsn) => {
            let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"lsn\":{lsn}}}");
        }
        Err(e) => {
            let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":");
            emit_str(out, &e.to_string());
            out.push('}');
        }
    }
}

/// Decode a feedback response into `(id, result)`.
pub fn decode_feedback_response(payload: &[u8]) -> Result<(u64, Result<u64, ServeError>), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => {
            let lsn = doc
                .get("lsn")
                .and_then(Json::as_u64)
                .ok_or("missing numeric \"lsn\"")?;
            Ok((id, Ok(lsn)))
        }
        Some(Json::Bool(false)) => {
            let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let err = if let Some(detail) = msg.strip_prefix("bad request: ") {
                ServeError::BadRequest(detail.to_string())
            } else if let Some(detail) = msg.strip_prefix("internal: ") {
                ServeError::Internal(detail.to_string())
            } else {
                ServeError::Transport(msg.to_string())
            };
            Ok((id, Err(err)))
        }
        _ => Err("missing boolean \"ok\"".into()),
    }
}

/// Encode an admin query frame payload.
pub fn encode_admin_request(id: u64, cmd: AdminCommand) -> Vec<u8> {
    format!("{{\"id\":{id},\"admin\":\"{}\"}}", cmd.keyword()).into_bytes()
}

/// Encode an admin response. `data` must already be serialized JSON (the
/// handlers produce their payloads directly); it is embedded verbatim.
pub fn encode_admin_response(id: u64, data: &str) -> Vec<u8> {
    let mut out = String::new();
    encode_admin_response_into(&mut out, id, data);
    out.into_bytes()
}

/// [`encode_admin_response`] into a reusable scratch buffer.
pub fn encode_admin_response_into(out: &mut String, id: u64, data: &str) {
    out.clear();
    let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"data\":{data}}}");
}

/// Decode an admin response into `(id, data)`.
pub fn decode_admin_response(payload: &[u8]) -> Result<(u64, Json), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let mut doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    if !matches!(doc.get("ok"), Some(Json::Bool(true))) {
        let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
        return Err(format!("admin query failed: {msg}"));
    }
    let data = match &mut doc {
        Json::Obj(map) => map.remove("data"),
        _ => None,
    };
    Ok((id, data.ok_or("missing \"data\"")?))
}

/// Encode a response frame payload.
pub fn encode_response(id: u64, result: &Result<RankResponse, ServeError>) -> Vec<u8> {
    let mut out = String::new();
    encode_response_into(&mut out, id, result);
    out.into_bytes()
}

/// [`encode_response`] into a caller-owned scratch buffer (cleared first),
/// so a connection reuses one allocation across frames.
pub fn encode_response_into(out: &mut String, id: u64, result: &Result<RankResponse, ServeError>) {
    out.clear();
    match result {
        Ok(resp) => {
            let _ = write!(
                out,
                "{{\"id\":{id},\"ok\":true,\"cached\":{},\"scores\":[",
                resp.cached
            );
            // `degraded` is appended after `ranking` below only when set, so
            // pre-resilience peers parse responses unchanged.
            for (i, s) in resp.scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if s.is_finite() {
                    // Shortest round-trip formatting: parses back bit-identically.
                    let _ = write!(out, "{s}");
                } else {
                    out.push_str("null");
                }
            }
            out.push_str("],\"ranking\":[");
            for (i, f) in resp.ranking.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", f.0);
            }
            out.push(']');
            if resp.degraded {
                out.push_str(",\"degraded\":true");
            }
            if let Some(b) = &resp.stages {
                let _ = write!(
                    out,
                    concat!(
                        ",\"stages\":{{\"probe_us\":{},\"queue_us\":{},\"batch_us\":{},",
                        "\"score_us\":{},\"other_us\":{},\"total_us\":{}}}"
                    ),
                    b.probe_us, b.queue_us, b.batch_us, b.score_us, b.other_us, b.total_us
                );
            }
            if let Some(t) = resp.tier {
                let _ = write!(out, ",\"tier\":\"{t}\"");
            }
            out.push('}');
        }
        Err(e) => {
            let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":");
            emit_str(out, &e.to_string());
            out.push('}');
        }
    }
}

/// Decode a response frame payload into `(id, result)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Result<RankResponse, ServeError>), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => {
            let cached = matches!(doc.get("cached"), Some(Json::Bool(true)));
            let mut scores = Vec::new();
            if let Some(Json::Arr(items)) = doc.get("scores") {
                for item in items {
                    scores.push(item.as_f64().ok_or("scores must be numbers")?);
                }
            } else {
                return Err("missing array \"scores\"".into());
            }
            let mut ranking = Vec::new();
            if let Some(Json::Arr(items)) = doc.get("ranking") {
                for item in items {
                    let n = item.as_u64().ok_or("ranking entries must be fact ids")?;
                    ranking.push(FactId(n as u32));
                }
            } else {
                return Err("missing array \"ranking\"".into());
            }
            let degraded = matches!(doc.get("degraded"), Some(Json::Bool(true)));
            let tier = doc
                .get("tier")
                .and_then(Json::as_str)
                .and_then(Tier::from_name);
            let stages = doc.get("stages").map(|s| {
                let us = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
                StageBreakdown {
                    probe_us: us("probe_us"),
                    queue_us: us("queue_us"),
                    batch_us: us("batch_us"),
                    score_us: us("score_us"),
                    other_us: us("other_us"),
                    total_us: us("total_us"),
                }
            });
            Ok((
                id,
                Ok(RankResponse {
                    scores,
                    ranking,
                    cached,
                    degraded,
                    stages,
                    tier,
                }),
            ))
        }
        Some(Json::Bool(false)) => {
            let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let err = match msg {
                "overloaded" => ServeError::Overloaded,
                "deadline exceeded" => ServeError::DeadlineExceeded,
                "shutting down" => ServeError::ShuttingDown,
                other => {
                    if let Some(detail) = other.strip_prefix("bad request: ") {
                        ServeError::BadRequest(detail.to_string())
                    } else if let Some(detail) = other.strip_prefix("internal: ") {
                        ServeError::Internal(detail.to_string())
                    } else {
                        ServeError::Transport(other.to_string())
                    }
                }
            };
            Ok((id, Err(err)))
        }
        _ => Err("missing boolean \"ok\"".into()),
    }
}

// ---------------------------------------------------------------------------
// Binary protocol ("LSBP")
// ---------------------------------------------------------------------------

/// Which payload encoding a connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// UTF-8 JSON payloads (the legacy default; no connection preamble).
    Json,
    /// `LSBP` little-endian binary payloads (negotiated by hello/ack).
    Binary,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Json => "json",
            Protocol::Binary => "binary",
        })
    }
}

/// The binary-protocol connection magic. Read as a little-endian `u32`
/// length prefix this is `0x5042_534C` ≈ 1.25 GiB — far above [`MAX_FRAME`]
/// — so a hello can never be confused with a legal JSON frame, and a legacy
/// JSON server that receives one rejects it as oversized and closes.
pub const MAGIC: [u8; 4] = *b"LSBP";

/// Highest binary protocol version this build speaks.
pub const BINARY_VERSION: u16 = 1;

/// Byte length of a hello / hello-ack preamble (magic + `u16` version).
pub const HELLO_LEN: usize = 6;

/// Encode a hello (client) or hello-ack (server) preamble.
pub fn encode_hello(version: u16) -> [u8; HELLO_LEN] {
    let mut out = [0u8; HELLO_LEN];
    out[..4].copy_from_slice(&MAGIC);
    out[4..].copy_from_slice(&version.to_le_bytes());
    out
}

/// Parse a hello / hello-ack preamble, returning the peer's version.
pub fn decode_hello(bytes: &[u8; HELLO_LEN]) -> Result<u16, FrameError> {
    if bytes[..4] != MAGIC {
        return Err(FrameError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 {
        return Err(FrameError::UnsupportedVersion(0));
    }
    Ok(version)
}

// Frame-kind bytes (payload byte 0).
const BK_RANK_REQ: u8 = 1;
const BK_RANK_OK: u8 = 2;
const BK_RANK_ERR: u8 = 3;
const BK_FEEDBACK_REQ: u8 = 4;
const BK_FEEDBACK_OK: u8 = 5;
const BK_FEEDBACK_ERR: u8 = 6;
const BK_ADMIN_REQ: u8 = 7;
const BK_ADMIN_OK: u8 = 8;
const BK_ADMIN_ERR: u8 = 9;

/// Start a binary frame: a 4-byte length hole the encoder backfills in
/// [`seal_frame`], so encoders build prefix+payload in one allocation and
/// the writer sends it with one `write_all` — no second copy.
fn frame_shell() -> Vec<u8> {
    vec![0u8; 4]
}

fn seal_frame(mut buf: Vec<u8>) -> Vec<u8> {
    let len = (buf.len() - 4) as u32;
    debug_assert!(len <= MAX_FRAME, "encoder produced an oversized frame");
    buf[..4].copy_from_slice(&len.to_le_bytes());
    buf
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn error_code(e: &ServeError) -> (u8, &str) {
    match e {
        ServeError::Overloaded => (1, ""),
        ServeError::DeadlineExceeded => (2, ""),
        ServeError::ShuttingDown => (3, ""),
        ServeError::BadRequest(d) => (4, d),
        ServeError::Transport(d) => (5, d),
        ServeError::Internal(d) => (6, d),
    }
}

fn error_from_code(code: u8, detail: &str) -> Result<ServeError, FrameError> {
    Ok(match code {
        1 => ServeError::Overloaded,
        2 => ServeError::DeadlineExceeded,
        3 => ServeError::ShuttingDown,
        4 => ServeError::BadRequest(detail.to_string()),
        5 => ServeError::Transport(detail.to_string()),
        6 => ServeError::Internal(detail.to_string()),
        _ => return Err(FrameError::Malformed("unknown error code")),
    })
}

fn tier_code(t: Tier) -> u8 {
    match t {
        Tier::Exact => 0,
        Tier::Learned => 1,
        Tier::Sampled => 2,
    }
}

fn tier_from_code(code: u8) -> Result<Tier, FrameError> {
    Ok(match code {
        0 => Tier::Exact,
        1 => Tier::Learned,
        2 => Tier::Sampled,
        _ => return Err(FrameError::Malformed("unknown tier code")),
    })
}

/// Encode a binary rank request as a complete frame (length prefix
/// included, unlike the JSON `encode_*` functions which return payloads).
pub fn encode_binary_request(id: u64, req: &RankRequest, trace: Option<&TraceContext>) -> Vec<u8> {
    let mut buf = frame_shell();
    buf.push(BK_RANK_REQ);
    buf.extend_from_slice(&id.to_le_bytes());
    let mut flags = 0u8;
    if trace.is_some() {
        flags |= 1;
    }
    if req.deadline.is_some() {
        flags |= 2;
    }
    if req.slo.is_some() {
        flags |= 4;
    }
    buf.push(flags);
    if let Some(ctx) = trace {
        buf.extend_from_slice(&ctx.trace_id.to_le_bytes());
        buf.extend_from_slice(&ctx.span_id.to_le_bytes());
    }
    if let Some(d) = req.deadline {
        buf.extend_from_slice(&(d.as_micros().min(u64::MAX as u128) as u64).to_le_bytes());
    }
    if let Some(slo) = req.slo {
        buf.extend_from_slice(&(slo.as_micros().min(u64::MAX as u128) as u64).to_le_bytes());
    }
    put_str(&mut buf, &req.query_sql);
    buf.extend_from_slice(&(req.tuple.values.len() as u16).to_le_bytes());
    for v in &req.tuple.values {
        match v {
            Value::Int(n) => {
                buf.push(0);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(1);
                put_str(&mut buf, s);
            }
        }
    }
    buf.extend_from_slice(&(req.lineage.len() as u32).to_le_bytes());
    for f in &req.lineage {
        buf.extend_from_slice(&f.0.to_le_bytes());
    }
    buf.extend_from_slice(&(req.tuple.derivations.len() as u32).to_le_bytes());
    for m in &req.tuple.derivations {
        let facts = m.facts();
        buf.extend_from_slice(&(facts.len() as u32).to_le_bytes());
        for f in facts {
            buf.extend_from_slice(&f.0.to_le_bytes());
        }
    }
    seal_frame(buf)
}

fn encode_binary_error(buf: &mut Vec<u8>, kind: u8, id: u64, e: &ServeError) {
    buf.push(kind);
    buf.extend_from_slice(&id.to_le_bytes());
    let (code, detail) = error_code(e);
    buf.push(code);
    put_str(buf, detail);
}

/// Encode a binary rank response as a complete frame. Scores travel as raw
/// `f64` bits, so wire responses are trivially bit-identical to in-process
/// ones — no formatting or parsing on the hot path.
pub fn encode_binary_response(id: u64, result: &Result<RankResponse, ServeError>) -> Vec<u8> {
    let mut buf = frame_shell();
    match result {
        Ok(resp) => {
            buf.push(BK_RANK_OK);
            buf.extend_from_slice(&id.to_le_bytes());
            let mut flags = 0u8;
            if resp.cached {
                flags |= 1;
            }
            if resp.degraded {
                flags |= 2;
            }
            if resp.stages.is_some() {
                flags |= 4;
            }
            if resp.tier.is_some() {
                flags |= 8;
            }
            buf.push(flags);
            buf.extend_from_slice(&(resp.scores.len() as u32).to_le_bytes());
            for s in &resp.scores {
                buf.extend_from_slice(&s.to_bits().to_le_bytes());
            }
            buf.extend_from_slice(&(resp.ranking.len() as u32).to_le_bytes());
            for f in &resp.ranking {
                buf.extend_from_slice(&f.0.to_le_bytes());
            }
            if let Some(b) = &resp.stages {
                for v in [
                    b.probe_us, b.queue_us, b.batch_us, b.score_us, b.other_us, b.total_us,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            if let Some(t) = resp.tier {
                buf.push(tier_code(t));
            }
        }
        Err(e) => encode_binary_error(&mut buf, BK_RANK_ERR, id, e),
    }
    seal_frame(buf)
}

/// Encode a binary feedback request as a complete frame (`target` as raw
/// `f32` bits).
pub fn encode_binary_feedback_request(id: u64, rec: &FeedbackRecord) -> Vec<u8> {
    let mut buf = frame_shell();
    buf.push(BK_FEEDBACK_REQ);
    buf.extend_from_slice(&id.to_le_bytes());
    put_str(&mut buf, &rec.query_sql);
    put_str(&mut buf, &rec.tuple_fact);
    buf.extend_from_slice(&rec.target.to_bits().to_le_bytes());
    seal_frame(buf)
}

/// Encode a binary feedback response as a complete frame.
pub fn encode_binary_feedback_response(id: u64, result: &Result<u64, ServeError>) -> Vec<u8> {
    let mut buf = frame_shell();
    match result {
        Ok(lsn) => {
            buf.push(BK_FEEDBACK_OK);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&lsn.to_le_bytes());
        }
        Err(e) => encode_binary_error(&mut buf, BK_FEEDBACK_ERR, id, e),
    }
    seal_frame(buf)
}

/// Encode a binary admin request as a complete frame.
pub fn encode_binary_admin_request(id: u64, cmd: AdminCommand) -> Vec<u8> {
    let mut buf = frame_shell();
    buf.push(BK_ADMIN_REQ);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(match cmd {
        AdminCommand::Metrics => 0,
        AdminCommand::State => 1,
        AdminCommand::Traces => 2,
        AdminCommand::Recorder => 3,
    });
    seal_frame(buf)
}

/// Encode a binary admin response as a complete frame. The handler payloads
/// are JSON documents either way, so the binary framing carries them as one
/// length-prefixed string — obsctl works identically over both protocols.
pub fn encode_binary_admin_response(id: u64, data: &str) -> Vec<u8> {
    let mut buf = frame_shell();
    buf.push(BK_ADMIN_OK);
    buf.extend_from_slice(&id.to_le_bytes());
    put_str(&mut buf, data);
    seal_frame(buf)
}

/// Bounds-checked little-endian cursor over a binary payload. Every read
/// verifies `need ≤ have` first — hostile byte soups yield a typed
/// [`FrameError`], never a panic, and counts are checked against the bytes
/// that would carry them before anything is allocated.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn have(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.have() < n {
            return Err(FrameError::Truncated {
                need: n,
                have: self.have(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// A count of `n` items, each at least `width` bytes — rejected up
    /// front unless the remaining payload could actually hold them.
    fn count(&mut self, width: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(width);
        if self.have() < need {
            return Err(FrameError::Truncated {
                need,
                have: self.have(),
            });
        }
        Ok(n)
    }

    fn str_(&mut self) -> Result<&'a str, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| FrameError::Malformed("string not UTF-8"))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.have() != 0 {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn decode_binary_rank_req(c: &mut Cur<'_>) -> Result<Frame, FrameError> {
    let id = c.u64()?;
    let flags = c.u8()?;
    let trace = if flags & 1 != 0 {
        let trace_id = c.u64()?;
        let span_id = c.u64()?;
        Some(TraceContext {
            trace_id,
            span_id,
            parent: 0,
        })
    } else {
        None
    };
    let deadline = if flags & 2 != 0 {
        Some(Duration::from_micros(c.u64()?))
    } else {
        None
    };
    let slo = if flags & 4 != 0 {
        Some(Duration::from_micros(c.u64()?))
    } else {
        None
    };
    let query_sql = c.str_()?.to_string();
    let n_values = c.u16()? as usize;
    let mut values = Vec::with_capacity(n_values.min(1024));
    for _ in 0..n_values {
        match c.u8()? {
            0 => values.push(Value::Int(c.i64()?)),
            1 => values.push(Value::Str(c.str_()?.to_string())),
            _ => return Err(FrameError::Malformed("unknown value tag")),
        }
    }
    let n_lineage = c.count(4)?;
    let mut lineage = Vec::with_capacity(n_lineage);
    for _ in 0..n_lineage {
        lineage.push(FactId(c.u32()?));
    }
    let n_derivations = c.count(4)?;
    let mut derivations = Vec::with_capacity(n_derivations);
    for _ in 0..n_derivations {
        let n_facts = c.count(4)?;
        let mut facts = Vec::with_capacity(n_facts);
        for _ in 0..n_facts {
            facts.push(FactId(c.u32()?));
        }
        derivations.push(Monomial::from_facts(facts));
    }
    c.finish()?;
    Ok(Frame::Rank(
        id,
        RankRequest {
            query_sql,
            tuple: OutputTuple {
                values,
                derivations,
            },
            lineage,
            deadline,
            slo,
        },
        trace,
    ))
}

/// Decode any inbound binary frame (rank, feedback, or admin request).
/// Total: the decoder never panics and never allocates more than the
/// payload itself could describe — arbitrary bytes yield `Ok` or a typed
/// [`FrameError`] (the proptest fuzz suite in `tests/wire.rs` pins this).
pub fn decode_binary_frame(payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cur::new(payload);
    match c.u8()? {
        BK_RANK_REQ => decode_binary_rank_req(&mut c),
        BK_FEEDBACK_REQ => {
            let id = c.u64()?;
            let query_sql = c.str_()?.to_string();
            let tuple_fact = c.str_()?.to_string();
            let target = f32::from_bits(c.u32()?);
            c.finish()?;
            Ok(Frame::Feedback(
                id,
                FeedbackRecord {
                    query_sql,
                    tuple_fact,
                    target,
                },
            ))
        }
        BK_ADMIN_REQ => {
            let id = c.u64()?;
            let cmd = match c.u8()? {
                0 => AdminCommand::Metrics,
                1 => AdminCommand::State,
                2 => AdminCommand::Traces,
                3 => AdminCommand::Recorder,
                _ => return Err(FrameError::Malformed("unknown admin command")),
            };
            c.finish()?;
            Ok(Frame::Admin(id, cmd))
        }
        other => Err(FrameError::UnsupportedKind(other)),
    }
}

/// Decode a binary rank response payload into `(id, result)`.
pub fn decode_binary_response(
    payload: &[u8],
) -> Result<(u64, Result<RankResponse, ServeError>), FrameError> {
    let mut c = Cur::new(payload);
    match c.u8()? {
        BK_RANK_OK => {
            let id = c.u64()?;
            let flags = c.u8()?;
            let n_scores = c.count(8)?;
            let mut scores = Vec::with_capacity(n_scores);
            for _ in 0..n_scores {
                scores.push(f64::from_bits(c.u64()?));
            }
            let n_ranking = c.count(4)?;
            let mut ranking = Vec::with_capacity(n_ranking);
            for _ in 0..n_ranking {
                ranking.push(FactId(c.u32()?));
            }
            let stages = if flags & 4 != 0 {
                Some(StageBreakdown {
                    probe_us: c.u64()?,
                    queue_us: c.u64()?,
                    batch_us: c.u64()?,
                    score_us: c.u64()?,
                    other_us: c.u64()?,
                    total_us: c.u64()?,
                })
            } else {
                None
            };
            let tier = if flags & 8 != 0 {
                Some(tier_from_code(c.u8()?)?)
            } else {
                None
            };
            c.finish()?;
            Ok((
                id,
                Ok(RankResponse {
                    scores,
                    ranking,
                    cached: flags & 1 != 0,
                    degraded: flags & 2 != 0,
                    stages,
                    tier,
                }),
            ))
        }
        BK_RANK_ERR => {
            let (id, err) = decode_binary_err(&mut c)?;
            Ok((id, Err(err)))
        }
        other => Err(FrameError::UnsupportedKind(other)),
    }
}

fn decode_binary_err(c: &mut Cur<'_>) -> Result<(u64, ServeError), FrameError> {
    let id = c.u64()?;
    let code = c.u8()?;
    let detail = c.str_()?;
    let err = error_from_code(code, detail)?;
    c.finish()?;
    Ok((id, err))
}

/// Decode a binary feedback response payload into `(id, result)`.
pub fn decode_binary_feedback_response(
    payload: &[u8],
) -> Result<(u64, Result<u64, ServeError>), FrameError> {
    let mut c = Cur::new(payload);
    match c.u8()? {
        BK_FEEDBACK_OK => {
            let id = c.u64()?;
            let lsn = c.u64()?;
            c.finish()?;
            Ok((id, Ok(lsn)))
        }
        BK_FEEDBACK_ERR => {
            let (id, err) = decode_binary_err(&mut c)?;
            Ok((id, Err(err)))
        }
        other => Err(FrameError::UnsupportedKind(other)),
    }
}

/// Decode a binary admin response payload into `(id, data)`.
pub fn decode_binary_admin_response(payload: &[u8]) -> Result<(u64, Json), FrameError> {
    let mut c = Cur::new(payload);
    match c.u8()? {
        BK_ADMIN_OK => {
            let id = c.u64()?;
            let data = c.str_()?;
            c.finish()?;
            let doc =
                ls_obs::parse_json(data).map_err(|_| FrameError::Malformed("admin data JSON"))?;
            Ok((id, doc))
        }
        BK_ADMIN_ERR => {
            let (_, err) = decode_binary_err(&mut c)?;
            Err(FrameError::Malformed(match err {
                ServeError::BadRequest(_) => "admin query rejected",
                _ => "admin query failed",
            }))
        }
        other => Err(FrameError::UnsupportedKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RankRequest {
        RankRequest {
            query_sql: "SELECT name FROM movies WHERE year > 1999".into(),
            tuple: OutputTuple {
                values: vec![Value::Str("Memento \"2000\"\n".into()), Value::Int(-3)],
                derivations: Vec::new(),
            },
            lineage: vec![FactId(5), FactId(0), FactId(123456)],
            deadline: Some(Duration::from_millis(250)),
            slo: None,
        }
    }

    #[test]
    fn request_round_trip() {
        let r = req();
        let (id, back) = decode_request(&encode_request(42, &r, None)).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back.query_sql, r.query_sql);
        assert_eq!(back.tuple.values, r.tuple.values);
        assert_eq!(back.lineage, r.lineage);
        assert_eq!(back.deadline, r.deadline);
    }

    #[test]
    fn slo_and_derivations_round_trip() {
        let mut r = req();
        r.slo = Some(Duration::from_micros(750));
        r.tuple.derivations = vec![
            Monomial::from_facts(vec![FactId(5), FactId(123456)]),
            Monomial::from_facts(vec![FactId(0)]),
        ];
        let (_, back) = decode_request(&encode_request(7, &r, None)).unwrap();
        assert_eq!(back.slo, r.slo);
        assert_eq!(back.tuple.derivations, r.tuple.derivations);
        // Requests without the optional fields stay on the legacy wire shape
        // and decode to their defaults.
        let legacy = encode_request(8, &req(), None);
        assert!(!String::from_utf8_lossy(&legacy).contains("slo_us"));
        assert!(!String::from_utf8_lossy(&legacy).contains("derivations"));
        let (_, back) = decode_request(&legacy).unwrap();
        assert_eq!(back.slo, None);
        assert!(back.tuple.derivations.is_empty());
    }

    #[test]
    fn tier_tag_round_trips_and_stays_optional() {
        for tier in [
            None,
            Some(Tier::Exact),
            Some(Tier::Learned),
            Some(Tier::Sampled),
        ] {
            let resp = RankResponse {
                scores: vec![0.5, 0.25],
                ranking: vec![FactId(5), FactId(0)],
                cached: false,
                degraded: false,
                stages: None,
                tier,
            };
            let bytes = encode_response(3, &Ok(resp.clone()));
            if tier.is_none() {
                assert!(!String::from_utf8_lossy(&bytes).contains("tier"));
            }
            let (id, back) = decode_response(&bytes).unwrap();
            assert_eq!(id, 3);
            assert_eq!(back.unwrap().tier, tier);
        }
    }

    #[test]
    fn trace_context_round_trips_full_64_bits() {
        let ctx = TraceContext {
            trace_id: u64::MAX - 17, // would be rounded by an f64 number
            span_id: (1 << 63) | 5,
            parent: 0,
        };
        let bytes = encode_request(1, &req(), Some(&ctx));
        match decode_frame(&bytes).unwrap() {
            Frame::Rank(id, _, Some(back)) => {
                assert_eq!(id, 1);
                assert_eq!(back.trace_id, ctx.trace_id);
                assert_eq!(back.span_id, ctx.span_id);
            }
            other => panic!("expected traced rank frame, got {other:?}"),
        }
        // Untraced frames decode with no context.
        match decode_frame(&encode_request(2, &req(), None)).unwrap() {
            Frame::Rank(_, _, None) => {}
            other => panic!("expected untraced rank frame, got {other:?}"),
        }
    }

    #[test]
    fn admin_frames_round_trip() {
        for cmd in [
            AdminCommand::Metrics,
            AdminCommand::State,
            AdminCommand::Traces,
            AdminCommand::Recorder,
        ] {
            match decode_frame(&encode_admin_request(9, cmd)).unwrap() {
                Frame::Admin(9, back) => assert_eq!(back, cmd),
                other => panic!("expected admin frame, got {other:?}"),
            }
        }
        let resp = encode_admin_response(9, r#"{"inflight":3,"breaker":"closed"}"#);
        let (id, data) = decode_admin_response(&resp).unwrap();
        assert_eq!(id, 9);
        assert_eq!(data.get("inflight").and_then(Json::as_u64), Some(3));
        assert_eq!(data.get("breaker").and_then(Json::as_str), Some("closed"));
    }

    #[test]
    fn feedback_frames_round_trip_bit_identically() {
        let rec = FeedbackRecord {
            query_sql: "SELECT \"name\"\nFROM movies".into(),
            tuple_fact: "(Memento) | movies(12, 'Memento', 2000)".into(),
            target: 0.123_456_79_f32, // awkward shortest-repr float
        };
        match decode_frame(&encode_feedback_request(11, &rec)).unwrap() {
            Frame::Feedback(id, back) => {
                assert_eq!(id, 11);
                assert_eq!(back.query_sql, rec.query_sql);
                assert_eq!(back.tuple_fact, rec.tuple_fact);
                assert_eq!(back.target.to_bits(), rec.target.to_bits());
            }
            other => panic!("expected feedback frame, got {other:?}"),
        }
        let (id, ok) = decode_feedback_response(&encode_feedback_response(11, &Ok(42))).unwrap();
        assert_eq!((id, ok), (11, Ok(42)));
        let err = Err(ServeError::BadRequest(
            "online learning is not enabled on this server".into(),
        ));
        let (_, back) = decode_feedback_response(&encode_feedback_response(12, &err)).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn response_round_trip_is_bit_identical() {
        // Awkward floats: subnormal, negative zero, many digits.
        let resp = RankResponse {
            scores: vec![0.1 + 0.2, -0.0, 1e-310, 0.123_456_789_012_345_68],
            ranking: vec![FactId(2), FactId(0), FactId(1), FactId(3)],
            cached: true,
            degraded: false,
            stages: None,
            tier: None,
        };
        let (id, back) = decode_response(&encode_response(7, &Ok(resp.clone()))).unwrap();
        assert_eq!(id, 7);
        let back = back.unwrap();
        assert!(back.cached);
        assert_eq!(back.ranking, resp.ranking);
        for (a, b) in resp.scores.iter().zip(&back.scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn error_round_trip() {
        for e in [
            ServeError::Overloaded,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("unknown fact id 9".into()),
            ServeError::Internal("worker panicked while scoring".into()),
        ] {
            let (_, back) = decode_response(&encode_response(1, &Err(e.clone()))).unwrap();
            assert_eq!(back, Err(e));
        }
    }

    #[test]
    fn degraded_flag_survives_the_wire_and_defaults_off() {
        let resp = RankResponse {
            scores: vec![0.5],
            ranking: vec![FactId(1)],
            cached: false,
            degraded: true,
            stages: None,
            tier: None,
        };
        let bytes = encode_response(3, &Ok(resp));
        assert!(std::str::from_utf8(&bytes)
            .unwrap()
            .contains("\"degraded\":true"));
        let (_, back) = decode_response(&bytes).unwrap();
        assert!(back.unwrap().degraded);
        // A frame without the key (older peer) decodes as not-degraded.
        let legacy = br#"{"id":3,"ok":true,"cached":false,"scores":[0.5],"ranking":[1]}"#;
        let (_, back) = decode_response(legacy).unwrap();
        assert!(!back.unwrap().degraded);
    }

    #[test]
    fn stage_breakdown_survives_the_wire() {
        let resp = RankResponse {
            scores: vec![0.5],
            ranking: vec![FactId(1)],
            cached: false,
            degraded: false,
            stages: Some(StageBreakdown {
                probe_us: 3,
                queue_us: 120,
                batch_us: 40,
                score_us: 900,
                other_us: 7,
                total_us: 1070,
            }),
            tier: None,
        };
        let (_, back) = decode_response(&encode_response(4, &Ok(resp.clone()))).unwrap();
        assert_eq!(back.unwrap().stages, resp.stages);
        // A frame without the key decodes as stage-less.
        let legacy = br#"{"id":4,"ok":true,"cached":false,"scores":[0.5],"ranking":[1]}"#;
        let (_, back) = decode_response(legacy).unwrap();
        assert!(back.unwrap().stages.is_none());
    }

    #[test]
    fn frame_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected_with_typed_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(
            frame_error(&err),
            Some(&FrameError::TooLarge {
                len: (MAX_FRAME + 1) as u64,
                cap: MAX_FRAME,
            })
        );
        // The declared length was never allocated or read.
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    fn oversized_write_rejected_with_typed_error() {
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &payload).unwrap_err();
        assert!(matches!(
            frame_error(&err),
            Some(&FrameError::TooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing must hit the wire");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 10 payload bytes
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    /// Strip the length prefix off an encoded binary frame and check it.
    fn unframe(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix disagrees with frame");
        &frame[4..]
    }

    #[test]
    fn hello_magic_can_never_be_a_legal_json_frame() {
        // The whole negotiation scheme rests on this inequality.
        assert!(u32::from_le_bytes(MAGIC) > MAX_FRAME);
        let hello = encode_hello(BINARY_VERSION);
        assert_eq!(decode_hello(&hello), Ok(BINARY_VERSION));
        assert_eq!(
            decode_hello(b"LSBQ\x01\x00"),
            Err(FrameError::BadMagic(*b"LSBQ"))
        );
        assert_eq!(
            decode_hello(&encode_hello(0)),
            Err(FrameError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn binary_request_round_trips_with_every_optional_field() {
        let mut r = req();
        r.slo = Some(Duration::from_micros(750));
        r.tuple.derivations = vec![
            Monomial::from_facts(vec![FactId(5), FactId(123456)]),
            Monomial::from_facts(vec![FactId(0)]),
        ];
        let ctx = TraceContext {
            trace_id: u64::MAX - 17,
            span_id: (1 << 63) | 5,
            parent: 0,
        };
        let frame = encode_binary_request(42, &r, Some(&ctx));
        match decode_binary_frame(unframe(&frame)).unwrap() {
            Frame::Rank(id, back, Some(trace)) => {
                assert_eq!(id, 42);
                assert_eq!(back.query_sql, r.query_sql);
                assert_eq!(back.tuple.values, r.tuple.values);
                assert_eq!(back.tuple.derivations, r.tuple.derivations);
                assert_eq!(back.lineage, r.lineage);
                assert_eq!(back.deadline, r.deadline);
                assert_eq!(back.slo, r.slo);
                assert_eq!(trace.trace_id, ctx.trace_id);
                assert_eq!(trace.span_id, ctx.span_id);
            }
            other => panic!("expected traced rank frame, got {other:?}"),
        }
        // And without the optional fields.
        let frame = encode_binary_request(7, &req(), None);
        match decode_binary_frame(unframe(&frame)).unwrap() {
            Frame::Rank(7, back, None) => assert!(back.slo.is_none()),
            other => panic!("expected bare rank frame, got {other:?}"),
        }
    }

    #[test]
    fn binary_response_round_trip_is_bit_identical() {
        let resp = RankResponse {
            scores: vec![0.1 + 0.2, -0.0, 1e-310, f64::NAN, 0.123_456_789_012_345_68],
            ranking: vec![FactId(2), FactId(0), FactId(1), FactId(3)],
            cached: true,
            degraded: true,
            stages: Some(StageBreakdown {
                probe_us: 3,
                queue_us: 120,
                batch_us: 40,
                score_us: 900,
                other_us: 7,
                total_us: 1070,
            }),
            tier: Some(Tier::Learned),
        };
        let frame = encode_binary_response(9, &Ok(resp.clone()));
        let (id, back) = decode_binary_response(unframe(&frame)).unwrap();
        assert_eq!(id, 9);
        let back = back.unwrap();
        assert!(back.cached && back.degraded);
        assert_eq!(back.ranking, resp.ranking);
        assert_eq!(back.stages, resp.stages);
        assert_eq!(back.tier, resp.tier);
        for (a, b) in resp.scores.iter().zip(&back.scores) {
            // Raw-bits transport: even NaN payloads survive, which the JSON
            // path cannot promise (it sends null).
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn binary_errors_round_trip_typed() {
        for e in [
            ServeError::Overloaded,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("unknown fact id 9".into()),
            ServeError::Transport("torn".into()),
            ServeError::Internal("worker panicked while scoring".into()),
        ] {
            let frame = encode_binary_response(1, &Err(e.clone()));
            let (_, back) = decode_binary_response(unframe(&frame)).unwrap();
            assert_eq!(back, Err(e));
        }
    }

    #[test]
    fn binary_feedback_and_admin_round_trip() {
        let rec = FeedbackRecord {
            query_sql: "SELECT \"name\"\nFROM movies".into(),
            tuple_fact: "(Memento) | movies(12, 'Memento', 2000)".into(),
            target: 0.123_456_79_f32,
        };
        match decode_binary_frame(unframe(&encode_binary_feedback_request(11, &rec))).unwrap() {
            Frame::Feedback(11, back) => {
                assert_eq!(back.query_sql, rec.query_sql);
                assert_eq!(back.target.to_bits(), rec.target.to_bits());
            }
            other => panic!("expected feedback frame, got {other:?}"),
        }
        let frame = encode_binary_feedback_response(11, &Ok(42));
        assert_eq!(
            decode_binary_feedback_response(unframe(&frame)).unwrap(),
            (11, Ok(42))
        );
        for cmd in [
            AdminCommand::Metrics,
            AdminCommand::State,
            AdminCommand::Traces,
            AdminCommand::Recorder,
        ] {
            match decode_binary_frame(unframe(&encode_binary_admin_request(9, cmd))).unwrap() {
                Frame::Admin(9, back) => assert_eq!(back, cmd),
                other => panic!("expected admin frame, got {other:?}"),
            }
        }
        let frame = encode_binary_admin_response(9, r#"{"inflight":3}"#);
        let (id, data) = decode_binary_admin_response(unframe(&frame)).unwrap();
        assert_eq!(id, 9);
        assert_eq!(data.get("inflight").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn binary_decoder_rejects_hostile_counts_without_allocating() {
        // A rank-ok frame claiming u32::MAX scores in a 32-byte payload:
        // the count is checked against the remaining bytes first.
        let mut buf = vec![BK_RANK_OK];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0); // flags
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        match decode_binary_response(&buf) {
            Err(FrameError::Truncated { need, have }) => {
                assert!(need > have, "need {need} have {have}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Trailing junk after a well-formed payload is typed, too.
        let mut frame = encode_binary_admin_request(3, AdminCommand::State);
        frame.push(0xFF);
        match decode_binary_frame(&frame[4..]) {
            Err(FrameError::Malformed(msg)) => {
                assert_eq!(msg, "trailing bytes after payload");
            }
            other => panic!("expected Malformed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn scratch_encoders_match_their_allocating_twins() {
        let ok: Result<RankResponse, ServeError> = Ok(RankResponse {
            scores: vec![0.5, 0.25],
            ranking: vec![FactId(1), FactId(0)],
            cached: false,
            degraded: false,
            stages: None,
            tier: None,
        });
        let mut scratch = String::from("residue from a previous frame");
        encode_response_into(&mut scratch, 5, &ok);
        assert_eq!(scratch.as_bytes(), &encode_response(5, &ok)[..]);
        encode_feedback_response_into(&mut scratch, 6, &Ok(9));
        assert_eq!(scratch.as_bytes(), &encode_feedback_response(6, &Ok(9))[..]);
        encode_admin_response_into(&mut scratch, 7, "{}");
        assert_eq!(scratch.as_bytes(), &encode_admin_response(7, "{}")[..]);
    }

    #[test]
    fn vectored_write_frame_survives_short_writes() {
        // A sink that accepts one byte per call exercises every resumption
        // path in the vectored prefix+payload write.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = OneByte(Vec::new());
        write_frame(&mut sink, b"payload").unwrap();
        let mut cursor = io::Cursor::new(sink.0);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"payload");
    }
}
