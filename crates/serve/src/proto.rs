//! Framed JSON wire protocol for the TCP front-end.
//!
//! Every message is a **frame**: a little-endian `u32` byte length followed
//! by that many bytes of UTF-8 JSON. Frames above [`MAX_FRAME`] bytes are
//! rejected (a corrupt length prefix must not make the server allocate 4 GiB).
//!
//! Request object:
//!
//! ```json
//! {"id": 7, "query": "SELECT …", "tuple": ["Alice", 3],
//!  "lineage": [0, 12, 31], "deadline_ms": 250}
//! ```
//!
//! `tuple` holds the output tuple's values — JSON strings become
//! `Value::Str`, JSON numbers become `Value::Int` (the relational layer has
//! no float column type). `deadline_ms` is optional, as are the tier-path
//! extras: `slo_us` (accuracy–latency budget) and `derivations` (the
//! tuple's provenance, one array of fact ids per derivation). Responses
//! answered by the tiered path carry `"tier":"exact"|"learned"|"sampled"`.
//!
//! Response object (success / failure):
//!
//! ```json
//! {"id": 7, "ok": true, "cached": false,
//!  "scores": [0.91, 0.13, 0.42], "ranking": [0, 31, 12]}
//! {"id": 7, "ok": false, "error": "overloaded"}
//! ```
//!
//! Scores are emitted with Rust's shortest-round-trip `f64` formatting and
//! parsed back with a correctly-rounded parser, so the floats a TCP client
//! receives are bit-identical to the in-process [`crate::RankResponse`] —
//! the determinism invariant survives the wire.

use crate::server::{RankRequest, RankResponse, ServeError, StageBreakdown};
use ls_circuit::Tier;
use ls_core::FeedbackRecord;
use ls_obs::{Json, TraceContext};
use ls_relational::{FactId, Monomial, OutputTuple, Value};
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Upper bound on a single frame's payload (16 MiB).
pub const MAX_FRAME: u32 = 16 << 20;

/// A typed framing failure. Carried as the payload of an `io::Error` so it
/// survives the `io::Result` plumbing; recover it with [`frame_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared payload length exceeds [`MAX_FRAME`] — a corrupt or
    /// hostile length prefix must not drive a multi-gigabyte allocation.
    TooLarge {
        /// The length the frame header declared.
        len: u64,
        /// The cap it exceeded ([`MAX_FRAME`]).
        cap: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, cap } => {
                write!(f, "frame length {len} exceeds cap {cap}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Recover the typed [`FrameError`] from an `io::Error`, if it carries one.
pub fn frame_error(e: &io::Error) -> Option<&FrameError> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge {
                len: payload.len() as u64,
                cap: MAX_FRAME,
            },
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge {
                len: len as u64,
                cap: MAX_FRAME,
            },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode a request frame payload. When `trace` is given, the frame carries
/// the client's trace identity (`{"trace":{"id":"…","span":"…"}}`, 16-digit
/// hex — JSON numbers are f64 and would round 64-bit ids) so server-side
/// spans stitch into the client's trace.
pub fn encode_request(id: u64, req: &RankRequest, trace: Option<&TraceContext>) -> Vec<u8> {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id}");
    if let Some(ctx) = trace {
        let _ = write!(
            out,
            ",\"trace\":{{\"id\":\"{}\",\"span\":\"{}\"}}",
            ctx.trace_hex(),
            ctx.span_hex()
        );
    }
    out.push_str(",\"query\":");
    emit_str(&mut out, &req.query_sql);
    out.push_str(",\"tuple\":[");
    for (i, v) in req.tuple.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => emit_str(&mut out, s),
        }
    }
    out.push_str("],\"lineage\":[");
    for (i, f) in req.lineage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", f.0);
    }
    out.push(']');
    if let Some(d) = req.deadline {
        let _ = write!(out, ",\"deadline_ms\":{}", d.as_millis());
    }
    // Tier-path extras, both optional so pre-tier peers interoperate: the
    // accuracy-latency budget and the tuple's provenance (one array of fact
    // ids per derivation), which the exact and sampled tiers require.
    if let Some(slo) = req.slo {
        let _ = write!(out, ",\"slo_us\":{}", slo.as_micros());
    }
    if !req.tuple.derivations.is_empty() {
        out.push_str(",\"derivations\":[");
        for (i, m) in req.tuple.derivations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, f) in m.facts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", f.0);
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push('}');
    out.into_bytes()
}

/// An introspection query carried on the same TCP port as rank traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminCommand {
    /// Full metrics snapshot (counters, gauges, histograms + exemplars).
    Metrics,
    /// Queue/pool/cache/breaker operational state.
    State,
    /// Active traced requests and their stage progress.
    Traces,
    /// Flight-recorder ring contents.
    Recorder,
}

impl AdminCommand {
    /// The wire keyword for this command.
    pub fn keyword(self) -> &'static str {
        match self {
            AdminCommand::Metrics => "metrics",
            AdminCommand::State => "state",
            AdminCommand::Traces => "traces",
            AdminCommand::Recorder => "recorder",
        }
    }

    /// Parse a wire keyword.
    pub fn from_keyword(s: &str) -> Option<AdminCommand> {
        match s {
            "metrics" => Some(AdminCommand::Metrics),
            "state" => Some(AdminCommand::State),
            "traces" => Some(AdminCommand::Traces),
            "recorder" => Some(AdminCommand::Recorder),
            _ => None,
        }
    }
}

/// One decoded inbound frame: rank traffic (with its optional client trace),
/// an admin introspection query, or an online-learning feedback record —
/// multiplexed by the `"admin"` and `"feedback"` keys.
#[derive(Debug)]
pub enum Frame {
    /// A ranking request and the trace context it carried, if any.
    Rank(u64, RankRequest, Option<TraceContext>),
    /// An admin query.
    Admin(u64, AdminCommand),
    /// A feedback record for the online-learning WAL.
    Feedback(u64, FeedbackRecord),
}

/// Decode any inbound frame (rank, admin, or feedback).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    if let Some(kw) = doc.get("admin").and_then(Json::as_str) {
        let cmd = AdminCommand::from_keyword(kw).ok_or_else(|| format!("unknown admin {kw:?}"))?;
        return Ok(Frame::Admin(id, cmd));
    }
    if let Some(fb) = doc.get("feedback") {
        let query_sql = fb
            .get("query")
            .and_then(Json::as_str)
            .ok_or("feedback missing string \"query\"")?
            .to_string();
        let tuple_fact = fb
            .get("fact")
            .and_then(Json::as_str)
            .ok_or("feedback missing string \"fact\"")?
            .to_string();
        let target = fb
            .get("target")
            .and_then(Json::as_f64)
            .ok_or("feedback missing numeric \"target\"")? as f32;
        return Ok(Frame::Feedback(
            id,
            FeedbackRecord {
                query_sql,
                tuple_fact,
                target,
            },
        ));
    }
    let trace = doc.get("trace").and_then(|t| {
        TraceContext::from_hex(
            t.get("id").and_then(Json::as_str)?,
            t.get("span").and_then(Json::as_str),
        )
    });
    let req = decode_rank_body(&doc)?;
    Ok(Frame::Rank(id, req, trace))
}

/// Decode a request frame payload into `(id, request)`, rejecting admin
/// frames. Retained for peers that speak only rank traffic.
pub fn decode_request(payload: &[u8]) -> Result<(u64, RankRequest), String> {
    match decode_frame(payload)? {
        Frame::Rank(id, req, _) => Ok((id, req)),
        Frame::Admin(..) => Err("admin frame where a rank request was expected".into()),
        Frame::Feedback(..) => Err("feedback frame where a rank request was expected".into()),
    }
}

fn decode_rank_body(doc: &Json) -> Result<RankRequest, String> {
    let query_sql = doc
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string \"query\"")?
        .to_string();
    let mut values = Vec::new();
    if let Some(Json::Arr(items)) = doc.get("tuple") {
        for item in items {
            match item {
                Json::Str(s) => values.push(Value::Str(s.clone())),
                Json::Num(n) => values.push(Value::Int(*n as i64)),
                other => return Err(format!("bad tuple value {other:?}")),
            }
        }
    } else {
        return Err("missing array \"tuple\"".into());
    }
    let mut lineage = Vec::new();
    if let Some(Json::Arr(items)) = doc.get("lineage") {
        for item in items {
            let n = item.as_u64().ok_or("lineage entries must be fact ids")?;
            if n > u32::MAX as u64 {
                return Err(format!("fact id {n} out of range"));
            }
            lineage.push(FactId(n as u32));
        }
    } else {
        return Err("missing array \"lineage\"".into());
    }
    let deadline = doc
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis);
    let slo = doc
        .get("slo_us")
        .and_then(Json::as_u64)
        .map(Duration::from_micros);
    let mut derivations = Vec::new();
    if let Some(Json::Arr(monos)) = doc.get("derivations") {
        for mono in monos {
            let Json::Arr(ids) = mono else {
                return Err("derivations must be arrays of fact ids".into());
            };
            let mut facts = Vec::with_capacity(ids.len());
            for item in ids {
                let n = item.as_u64().ok_or("derivation entries must be fact ids")?;
                if n > u32::MAX as u64 {
                    return Err(format!("fact id {n} out of range"));
                }
                facts.push(FactId(n as u32));
            }
            derivations.push(Monomial::from_facts(facts));
        }
    }
    Ok(RankRequest {
        query_sql,
        tuple: OutputTuple {
            values,
            derivations,
        },
        lineage,
        deadline,
        slo,
    })
}

/// Encode a feedback frame payload. `target` uses shortest-round-trip `f32`
/// formatting, so the record the server appends to its WAL is bit-identical
/// to the one the client held.
pub fn encode_feedback_request(id: u64, rec: &FeedbackRecord) -> Vec<u8> {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id},\"feedback\":{{\"query\":");
    emit_str(&mut out, &rec.query_sql);
    out.push_str(",\"fact\":");
    emit_str(&mut out, &rec.tuple_fact);
    if rec.target.is_finite() {
        let _ = write!(out, ",\"target\":{}", rec.target);
    } else {
        out.push_str(",\"target\":null");
    }
    out.push_str("}}");
    out.into_bytes()
}

/// Encode a feedback response: on success the record's crash-durable log
/// sequence number, on failure the typed error.
pub fn encode_feedback_response(id: u64, result: &Result<u64, ServeError>) -> Vec<u8> {
    match result {
        Ok(lsn) => format!("{{\"id\":{id},\"ok\":true,\"lsn\":{lsn}}}").into_bytes(),
        Err(e) => {
            let mut out = String::new();
            let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":");
            emit_str(&mut out, &e.to_string());
            out.push('}');
            out.into_bytes()
        }
    }
}

/// Decode a feedback response into `(id, result)`.
pub fn decode_feedback_response(payload: &[u8]) -> Result<(u64, Result<u64, ServeError>), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => {
            let lsn = doc
                .get("lsn")
                .and_then(Json::as_u64)
                .ok_or("missing numeric \"lsn\"")?;
            Ok((id, Ok(lsn)))
        }
        Some(Json::Bool(false)) => {
            let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let err = if let Some(detail) = msg.strip_prefix("bad request: ") {
                ServeError::BadRequest(detail.to_string())
            } else if let Some(detail) = msg.strip_prefix("internal: ") {
                ServeError::Internal(detail.to_string())
            } else {
                ServeError::Transport(msg.to_string())
            };
            Ok((id, Err(err)))
        }
        _ => Err("missing boolean \"ok\"".into()),
    }
}

/// Encode an admin query frame payload.
pub fn encode_admin_request(id: u64, cmd: AdminCommand) -> Vec<u8> {
    format!("{{\"id\":{id},\"admin\":\"{}\"}}", cmd.keyword()).into_bytes()
}

/// Encode an admin response. `data` must already be serialized JSON (the
/// handlers produce their payloads directly); it is embedded verbatim.
pub fn encode_admin_response(id: u64, data: &str) -> Vec<u8> {
    format!("{{\"id\":{id},\"ok\":true,\"data\":{data}}}").into_bytes()
}

/// Decode an admin response into `(id, data)`.
pub fn decode_admin_response(payload: &[u8]) -> Result<(u64, Json), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let mut doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    if !matches!(doc.get("ok"), Some(Json::Bool(true))) {
        let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
        return Err(format!("admin query failed: {msg}"));
    }
    let data = match &mut doc {
        Json::Obj(map) => map.remove("data"),
        _ => None,
    };
    Ok((id, data.ok_or("missing \"data\"")?))
}

/// Encode a response frame payload.
pub fn encode_response(id: u64, result: &Result<RankResponse, ServeError>) -> Vec<u8> {
    let mut out = String::new();
    match result {
        Ok(resp) => {
            let _ = write!(
                out,
                "{{\"id\":{id},\"ok\":true,\"cached\":{},\"scores\":[",
                resp.cached
            );
            // `degraded` is appended after `ranking` below only when set, so
            // pre-resilience peers parse responses unchanged.
            for (i, s) in resp.scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if s.is_finite() {
                    // Shortest round-trip formatting: parses back bit-identically.
                    let _ = write!(out, "{s}");
                } else {
                    out.push_str("null");
                }
            }
            out.push_str("],\"ranking\":[");
            for (i, f) in resp.ranking.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", f.0);
            }
            out.push(']');
            if resp.degraded {
                out.push_str(",\"degraded\":true");
            }
            if let Some(b) = &resp.stages {
                let _ = write!(
                    out,
                    concat!(
                        ",\"stages\":{{\"probe_us\":{},\"queue_us\":{},\"batch_us\":{},",
                        "\"score_us\":{},\"other_us\":{},\"total_us\":{}}}"
                    ),
                    b.probe_us, b.queue_us, b.batch_us, b.score_us, b.other_us, b.total_us
                );
            }
            if let Some(t) = resp.tier {
                let _ = write!(out, ",\"tier\":\"{t}\"");
            }
            out.push('}');
        }
        Err(e) => {
            let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":");
            emit_str(&mut out, &e.to_string());
            out.push('}');
        }
    }
    out.into_bytes()
}

/// Decode a response frame payload into `(id, result)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Result<RankResponse, ServeError>), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let doc = ls_obs::parse_json(text)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"id\"")?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => {
            let cached = matches!(doc.get("cached"), Some(Json::Bool(true)));
            let mut scores = Vec::new();
            if let Some(Json::Arr(items)) = doc.get("scores") {
                for item in items {
                    scores.push(item.as_f64().ok_or("scores must be numbers")?);
                }
            } else {
                return Err("missing array \"scores\"".into());
            }
            let mut ranking = Vec::new();
            if let Some(Json::Arr(items)) = doc.get("ranking") {
                for item in items {
                    let n = item.as_u64().ok_or("ranking entries must be fact ids")?;
                    ranking.push(FactId(n as u32));
                }
            } else {
                return Err("missing array \"ranking\"".into());
            }
            let degraded = matches!(doc.get("degraded"), Some(Json::Bool(true)));
            let tier = doc
                .get("tier")
                .and_then(Json::as_str)
                .and_then(Tier::from_name);
            let stages = doc.get("stages").map(|s| {
                let us = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
                StageBreakdown {
                    probe_us: us("probe_us"),
                    queue_us: us("queue_us"),
                    batch_us: us("batch_us"),
                    score_us: us("score_us"),
                    other_us: us("other_us"),
                    total_us: us("total_us"),
                }
            });
            Ok((
                id,
                Ok(RankResponse {
                    scores,
                    ranking,
                    cached,
                    degraded,
                    stages,
                    tier,
                }),
            ))
        }
        Some(Json::Bool(false)) => {
            let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let err = match msg {
                "overloaded" => ServeError::Overloaded,
                "deadline exceeded" => ServeError::DeadlineExceeded,
                "shutting down" => ServeError::ShuttingDown,
                other => {
                    if let Some(detail) = other.strip_prefix("bad request: ") {
                        ServeError::BadRequest(detail.to_string())
                    } else if let Some(detail) = other.strip_prefix("internal: ") {
                        ServeError::Internal(detail.to_string())
                    } else {
                        ServeError::Transport(other.to_string())
                    }
                }
            };
            Ok((id, Err(err)))
        }
        _ => Err("missing boolean \"ok\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RankRequest {
        RankRequest {
            query_sql: "SELECT name FROM movies WHERE year > 1999".into(),
            tuple: OutputTuple {
                values: vec![Value::Str("Memento \"2000\"\n".into()), Value::Int(-3)],
                derivations: Vec::new(),
            },
            lineage: vec![FactId(5), FactId(0), FactId(123456)],
            deadline: Some(Duration::from_millis(250)),
            slo: None,
        }
    }

    #[test]
    fn request_round_trip() {
        let r = req();
        let (id, back) = decode_request(&encode_request(42, &r, None)).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back.query_sql, r.query_sql);
        assert_eq!(back.tuple.values, r.tuple.values);
        assert_eq!(back.lineage, r.lineage);
        assert_eq!(back.deadline, r.deadline);
    }

    #[test]
    fn slo_and_derivations_round_trip() {
        let mut r = req();
        r.slo = Some(Duration::from_micros(750));
        r.tuple.derivations = vec![
            Monomial::from_facts(vec![FactId(5), FactId(123456)]),
            Monomial::from_facts(vec![FactId(0)]),
        ];
        let (_, back) = decode_request(&encode_request(7, &r, None)).unwrap();
        assert_eq!(back.slo, r.slo);
        assert_eq!(back.tuple.derivations, r.tuple.derivations);
        // Requests without the optional fields stay on the legacy wire shape
        // and decode to their defaults.
        let legacy = encode_request(8, &req(), None);
        assert!(!String::from_utf8_lossy(&legacy).contains("slo_us"));
        assert!(!String::from_utf8_lossy(&legacy).contains("derivations"));
        let (_, back) = decode_request(&legacy).unwrap();
        assert_eq!(back.slo, None);
        assert!(back.tuple.derivations.is_empty());
    }

    #[test]
    fn tier_tag_round_trips_and_stays_optional() {
        for tier in [
            None,
            Some(Tier::Exact),
            Some(Tier::Learned),
            Some(Tier::Sampled),
        ] {
            let resp = RankResponse {
                scores: vec![0.5, 0.25],
                ranking: vec![FactId(5), FactId(0)],
                cached: false,
                degraded: false,
                stages: None,
                tier,
            };
            let bytes = encode_response(3, &Ok(resp.clone()));
            if tier.is_none() {
                assert!(!String::from_utf8_lossy(&bytes).contains("tier"));
            }
            let (id, back) = decode_response(&bytes).unwrap();
            assert_eq!(id, 3);
            assert_eq!(back.unwrap().tier, tier);
        }
    }

    #[test]
    fn trace_context_round_trips_full_64_bits() {
        let ctx = TraceContext {
            trace_id: u64::MAX - 17, // would be rounded by an f64 number
            span_id: (1 << 63) | 5,
            parent: 0,
        };
        let bytes = encode_request(1, &req(), Some(&ctx));
        match decode_frame(&bytes).unwrap() {
            Frame::Rank(id, _, Some(back)) => {
                assert_eq!(id, 1);
                assert_eq!(back.trace_id, ctx.trace_id);
                assert_eq!(back.span_id, ctx.span_id);
            }
            other => panic!("expected traced rank frame, got {other:?}"),
        }
        // Untraced frames decode with no context.
        match decode_frame(&encode_request(2, &req(), None)).unwrap() {
            Frame::Rank(_, _, None) => {}
            other => panic!("expected untraced rank frame, got {other:?}"),
        }
    }

    #[test]
    fn admin_frames_round_trip() {
        for cmd in [
            AdminCommand::Metrics,
            AdminCommand::State,
            AdminCommand::Traces,
            AdminCommand::Recorder,
        ] {
            match decode_frame(&encode_admin_request(9, cmd)).unwrap() {
                Frame::Admin(9, back) => assert_eq!(back, cmd),
                other => panic!("expected admin frame, got {other:?}"),
            }
        }
        let resp = encode_admin_response(9, r#"{"inflight":3,"breaker":"closed"}"#);
        let (id, data) = decode_admin_response(&resp).unwrap();
        assert_eq!(id, 9);
        assert_eq!(data.get("inflight").and_then(Json::as_u64), Some(3));
        assert_eq!(data.get("breaker").and_then(Json::as_str), Some("closed"));
    }

    #[test]
    fn feedback_frames_round_trip_bit_identically() {
        let rec = FeedbackRecord {
            query_sql: "SELECT \"name\"\nFROM movies".into(),
            tuple_fact: "(Memento) | movies(12, 'Memento', 2000)".into(),
            target: 0.123_456_79_f32, // awkward shortest-repr float
        };
        match decode_frame(&encode_feedback_request(11, &rec)).unwrap() {
            Frame::Feedback(id, back) => {
                assert_eq!(id, 11);
                assert_eq!(back.query_sql, rec.query_sql);
                assert_eq!(back.tuple_fact, rec.tuple_fact);
                assert_eq!(back.target.to_bits(), rec.target.to_bits());
            }
            other => panic!("expected feedback frame, got {other:?}"),
        }
        let (id, ok) = decode_feedback_response(&encode_feedback_response(11, &Ok(42))).unwrap();
        assert_eq!((id, ok), (11, Ok(42)));
        let err = Err(ServeError::BadRequest(
            "online learning is not enabled on this server".into(),
        ));
        let (_, back) = decode_feedback_response(&encode_feedback_response(12, &err)).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn response_round_trip_is_bit_identical() {
        // Awkward floats: subnormal, negative zero, many digits.
        let resp = RankResponse {
            scores: vec![0.1 + 0.2, -0.0, 1e-310, 0.123_456_789_012_345_68],
            ranking: vec![FactId(2), FactId(0), FactId(1), FactId(3)],
            cached: true,
            degraded: false,
            stages: None,
            tier: None,
        };
        let (id, back) = decode_response(&encode_response(7, &Ok(resp.clone()))).unwrap();
        assert_eq!(id, 7);
        let back = back.unwrap();
        assert!(back.cached);
        assert_eq!(back.ranking, resp.ranking);
        for (a, b) in resp.scores.iter().zip(&back.scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn error_round_trip() {
        for e in [
            ServeError::Overloaded,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("unknown fact id 9".into()),
            ServeError::Internal("worker panicked while scoring".into()),
        ] {
            let (_, back) = decode_response(&encode_response(1, &Err(e.clone()))).unwrap();
            assert_eq!(back, Err(e));
        }
    }

    #[test]
    fn degraded_flag_survives_the_wire_and_defaults_off() {
        let resp = RankResponse {
            scores: vec![0.5],
            ranking: vec![FactId(1)],
            cached: false,
            degraded: true,
            stages: None,
            tier: None,
        };
        let bytes = encode_response(3, &Ok(resp));
        assert!(std::str::from_utf8(&bytes)
            .unwrap()
            .contains("\"degraded\":true"));
        let (_, back) = decode_response(&bytes).unwrap();
        assert!(back.unwrap().degraded);
        // A frame without the key (older peer) decodes as not-degraded.
        let legacy = br#"{"id":3,"ok":true,"cached":false,"scores":[0.5],"ranking":[1]}"#;
        let (_, back) = decode_response(legacy).unwrap();
        assert!(!back.unwrap().degraded);
    }

    #[test]
    fn stage_breakdown_survives_the_wire() {
        let resp = RankResponse {
            scores: vec![0.5],
            ranking: vec![FactId(1)],
            cached: false,
            degraded: false,
            stages: Some(StageBreakdown {
                probe_us: 3,
                queue_us: 120,
                batch_us: 40,
                score_us: 900,
                other_us: 7,
                total_us: 1070,
            }),
            tier: None,
        };
        let (_, back) = decode_response(&encode_response(4, &Ok(resp.clone()))).unwrap();
        assert_eq!(back.unwrap().stages, resp.stages);
        // A frame without the key decodes as stage-less.
        let legacy = br#"{"id":4,"ok":true,"cached":false,"scores":[0.5],"ranking":[1]}"#;
        let (_, back) = decode_response(legacy).unwrap();
        assert!(back.unwrap().stages.is_none());
    }

    #[test]
    fn frame_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected_with_typed_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(
            frame_error(&err),
            Some(&FrameError::TooLarge {
                len: (MAX_FRAME + 1) as u64,
                cap: MAX_FRAME,
            })
        );
        // The declared length was never allocated or read.
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    fn oversized_write_rejected_with_typed_error() {
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &payload).unwrap_err();
        assert!(matches!(
            frame_error(&err),
            Some(&FrameError::TooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing must hit the wire");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 10 payload bytes
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
