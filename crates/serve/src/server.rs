//! The serving engine: bounded submission queue → dynamic micro-batcher →
//! worker pool, with an LRU ranking cache in front and admission control at
//! the door.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──rank()──▶ [admission: cache probe, depth check]
//!                          │ miss, depth ok
//!                          ▼
//!                   pending: VecDeque<Job>        (bounded by queue_depth)
//!                          │
//!                   micro-batcher thread          (batch_deadline window,
//!                          │                       max_batch_items budget)
//!                          ▼
//!                   work: VecDeque<WorkItem>      (per-job fact chunks)
//!                          │
//!            ┌─────────────┼─────────────┐
//!            ▼             ▼             ▼
//!        worker 0      worker 1   …  worker N−1    (Arc-shared weights,
//!            │             │             │          per-thread scratch)
//!            └──── last chunk finalizes job ───▶ cache insert, client wakeup
//! ```
//!
//! ## Determinism invariant
//!
//! For a fixed model snapshot, the response for a request is **bit-identical**
//! regardless of worker count, batching boundaries, or cache state:
//!
//! * every fact's score is produced by [`ls_core::LineageScorer::score_fact`]
//!   — the same code path the serial [`ls_core::predict_scores`] uses — whose
//!   `forward_infer` passes perform the training forward's float ops in the
//!   same order;
//! * each score is written into its *request-order slot*, so completion order
//!   (which does vary across runs) never influences the output;
//! * the ranking is assembled from the completed slot vector exactly the way
//!   `rank_lineage` assembles it (insertion in lineage order + descending
//!   sort with fact-id tie-break);
//! * the cache stores that final vector verbatim, so hits replay it bit-for-bit.

use crate::cache::{LruCache, RankKey};
use ls_circuit::{shapley_stratified, CacheState, CanonicalShape, CircuitStore, SloPolicy, Tier};
use ls_core::{
    render_tuple, FallbackScorer, LearnShapleyModel, LineageScorer, ScoreContext, Tokenizer,
};
use ls_fault::{
    lock_safe, wait_safe, wait_timeout_safe, CircuitBreaker, FaultAction, Injector, NoFaults,
};
use ls_provenance::Dnf;
use ls_relational::{Database, FactId, OutputTuple};
use ls_shapley::FactScores;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a worker needs to score facts, loaded once and `Arc`-shared
/// read-only across the pool.
pub struct ModelBundle {
    /// The frozen model (weights only touched through `&self` inference).
    pub model: LearnShapleyModel,
    /// The frozen vocabulary.
    pub tokenizer: Tokenizer,
    /// The database facts are rendered from.
    pub db: Database,
    /// Sequence-length budget for the packed (query, tuple+fact) pairs.
    pub max_len: usize,
}

impl ModelBundle {
    /// Load a persisted model snapshot (see `ls_core::persist`) and pair it
    /// with the serving database.
    pub fn load(path: &Path, db: Database, max_len: usize) -> io::Result<Self> {
        let (model, tokenizer) = ls_core::load_model(path)?;
        Ok(ModelBundle {
            model,
            tokenizer,
            db,
            max_len,
        })
    }
}

/// A ranking request: score the facts of `lineage` for `(query_sql, tuple)`.
#[derive(Debug, Clone)]
pub struct RankRequest {
    /// Canonical SQL text of the query.
    pub query_sql: String,
    /// The output tuple of interest (only its values matter for scoring).
    pub tuple: OutputTuple,
    /// The lineage facts to rank.
    pub lineage: Vec<FactId>,
    /// Optional per-request deadline; if scoring has not *started* by then
    /// the request is shed with [`ServeError::DeadlineExceeded`]. `None`
    /// falls back to [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Optional accuracy–latency budget for the tiered answer path. When
    /// set — and the server holds a circuit store and the request's
    /// `tuple.derivations` carry the provenance — the SLO policy picks the
    /// most accurate tier that fits: exact circuit Shapley or stratified
    /// sampling answer inline, the learned tier rides the batched pipeline.
    /// `None` always takes the learned pipeline.
    pub slo: Option<Duration>,
}

/// Per-stage latency attribution for one request, in microseconds. Stages
/// are disjoint and exhaustive: `probe + queue + batch + score + other =
/// total` exactly (`other` absorbs scheduling slack between stage marks, so
/// the identity holds by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageBreakdown {
    /// Admission: state-lock acquisition plus ranking-cache probe.
    pub probe_us: u64,
    /// Waiting in the submission queue for the micro-batcher.
    pub queue_us: u64,
    /// Batch assembly: coalescing window share plus context precompute and
    /// chunk expansion.
    pub batch_us: u64,
    /// Worker-pool scoring, from dispatch to the finalizing chunk.
    pub score_us: u64,
    /// Everything not covered by a named stage (wakeup latency, response
    /// assembly).
    pub other_us: u64,
    /// End-to-end server-side latency (probe start → client wakeup).
    pub total_us: u64,
}

/// Interned handles for the per-stage histograms. Looking a histogram up by
/// name takes the registry mutex; on the warm cache-hit path (~µs per
/// request, many client threads) that contention alone blows the tracing
/// overhead budget, so the hot paths go through these pre-resolved refs.
pub(crate) struct StageHists {
    pub probe: &'static ls_obs::Histogram,
    pub queue: &'static ls_obs::Histogram,
    pub batch: &'static ls_obs::Histogram,
    pub score: &'static ls_obs::Histogram,
    pub other: &'static ls_obs::Histogram,
    pub latency: &'static ls_obs::Histogram,
    pub serialize: &'static ls_obs::Histogram,
}

pub(crate) fn stage_hists() -> &'static StageHists {
    static HISTS: OnceLock<StageHists> = OnceLock::new();
    HISTS.get_or_init(|| StageHists {
        probe: ls_obs::histogram("serve.stage.probe"),
        queue: ls_obs::histogram("serve.stage.queue"),
        batch: ls_obs::histogram("serve.stage.batch"),
        score: ls_obs::histogram("serve.stage.score"),
        other: ls_obs::histogram("serve.stage.other"),
        latency: ls_obs::histogram("serve.latency"),
        serialize: ls_obs::histogram("serve.stage.serialize"),
    })
}

/// A completed ranking.
///
/// Equality deliberately ignores [`RankResponse::stages`]: timing metadata
/// varies run to run, while the determinism contract (and the chaos suite's
/// bit-identity assertions) cover the payload fields only.
#[derive(Debug, Clone)]
pub struct RankResponse {
    /// Predicted scores, aligned with the request's lineage order.
    pub scores: Vec<f64>,
    /// Facts ordered by descending score (fact-id tie-break).
    pub ranking: Vec<FactId>,
    /// True when served from the ranking cache.
    pub cached: bool,
    /// True when the circuit breaker routed this request to the fallback
    /// scorer instead of the model — the scores are the Nearest Queries
    /// baseline's, not the learned model's, and were not cached.
    pub degraded: bool,
    /// Per-stage latency attribution, populated only when the request ran
    /// under a trace (never for cached replays of another trace's work).
    pub stages: Option<StageBreakdown>,
    /// Which answer path produced the scores: the learned pipeline, the
    /// exact circuit store, or the stratified sampler. `None` for responses
    /// that carry no scores (empty lineage) and for degraded fallbacks.
    pub tier: Option<Tier>,
}

impl PartialEq for RankResponse {
    fn eq(&self, other: &Self) -> bool {
        self.scores == other.scores
            && self.ranking == other.ranking
            && self.cached == other.cached
            && self.degraded == other.degraded
            && self.tier == other.tier
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue is at capacity; the request was rejected
    /// immediately rather than queued (closed-loop clients should back off).
    Overloaded,
    /// The request's deadline passed before scoring started.
    DeadlineExceeded,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request was malformed (empty query, unknown fact id, …).
    BadRequest(String),
    /// Transport-level failure (TCP clients only).
    Transport(String),
    /// The server failed internally while scoring (worker panic, injected
    /// fault, fallback unable to answer). The request may be retried.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Transport(m) => write!(f, "transport: {m}"),
            ServeError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads scoring facts (each owns one `InferScratch`).
    pub workers: usize,
    /// Maximum in-flight requests (admitted but not yet answered); the
    /// admission bound of the subsystem.
    pub queue_depth: usize,
    /// Fact-item budget per micro-batch: the batcher dispatches as soon as
    /// this many items are pending, without waiting out the window.
    pub max_batch_items: usize,
    /// Micro-batch window: on the first pending request the batcher waits at
    /// most this long for more work to coalesce before dispatching.
    pub batch_deadline: Duration,
    /// Ranking-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Consecutive scoring failures that open the circuit breaker and flip
    /// dispatch to the fallback scorer (0 disables the breaker entirely).
    pub breaker_failures: u64,
    /// How long an open breaker waits before probing the model path again.
    pub breaker_cooldown: Duration,
    /// Cost model steering SLO-budgeted requests across the three tiers
    /// (only consulted when a circuit store is attached).
    pub slo_policy: SloPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Sized like the compute pool so `LS_THREADS` governs serving
            // too; serving stays correct (if slower) at one worker.
            workers: ls_par::threads(),
            queue_depth: 256,
            max_batch_items: 64,
            batch_deadline: Duration::from_micros(500),
            cache_capacity: 1024,
            default_deadline: None,
            breaker_failures: 0,
            breaker_cooldown: Duration::from_millis(250),
            slo_policy: SloPolicy::default(),
        }
    }
}

/// One admitted request moving through the pipeline.
struct Job {
    query_sql: String,
    tuple: OutputTuple,
    lineage: Vec<FactId>,
    key: RankKey,
    /// Registry key for the active-trace listing (monotone per process).
    seq: u64,
    /// The submitting thread's trace context, carried with the job so
    /// batcher/worker-side spans and histograms attribute to the request.
    trace: Option<ls_obs::TraceContext>,
    /// Admission-stage cost (lock + cache probe), measured before queuing.
    probe_us: u64,
    /// Stage marks: microseconds since `submitted` when the job left the
    /// queue, when its work was dispatched, and when scoring finished.
    /// Written once each at pipeline milestones; 0 = not reached.
    drained_us: AtomicU64,
    dispatched_us: AtomicU64,
    scored_us: AtomicU64,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Query/tuple-side precomputation, done once by the batcher.
    ctx: OnceLock<ScoreContext>,
    /// The model snapshot (and its generation) this job is scored by, pinned
    /// by the batcher at dispatch. Pinning makes a concurrent hot-swap safe:
    /// in-flight jobs finish on the snapshot they started with — all chunks,
    /// one model — and only their cache insert is generation-gated.
    pinned: OnceLock<(Arc<ModelBundle>, u64)>,
    /// Per-fact score slots (f64 bit patterns), written lock-free by index.
    scores: Vec<AtomicU64>,
    /// Slots still unwritten; the worker that zeroes this finalizes the job.
    remaining: AtomicUsize,
    /// Completion latch: the first path to flip this owns delivery; later
    /// attempts (a finalize racing a failure, a double fault) are no-ops —
    /// one injected worker panic fails exactly one job, exactly once.
    finished: AtomicBool,
    /// The response, set exactly once; guarded for the client wait.
    result: Mutex<ResultSlot>,
    done: Condvar,
}

/// Delivery state for one job: either a blocking waiter will collect
/// `value`, or an async `notify` callback consumes the result directly.
/// Both live under one mutex so registration cannot race completion — a
/// callback registered after the result landed fires immediately, and a
/// result landing after registration takes the callback; exactly one party
/// ever sees the response.
/// The async completion callback a [`ResultSlot`] may hold.
type RankNotify = Box<dyn FnOnce(Result<RankResponse, ServeError>) + Send>;

#[derive(Default)]
struct ResultSlot {
    value: Option<Result<RankResponse, ServeError>>,
    notify: Option<RankNotify>,
}

impl Job {
    /// Stamp a stage mark with "now", as µs since submission. Idempotent in
    /// effect (later stamps only ever grow the mark along the pipeline).
    fn mark(&self, cell: &AtomicU64) {
        cell.store(
            self.submitted.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
    }

    /// Assemble the disjoint stage attribution from the pipeline marks.
    fn breakdown(&self) -> StageBreakdown {
        let drained = self.drained_us.load(Ordering::Relaxed);
        let dispatched = self.dispatched_us.load(Ordering::Relaxed).max(drained);
        let scored = self.scored_us.load(Ordering::Relaxed).max(dispatched);
        let elapsed = (self.submitted.elapsed().as_micros() as u64).max(scored);
        StageBreakdown {
            probe_us: self.probe_us,
            queue_us: drained,
            batch_us: dispatched - drained,
            score_us: scored - dispatched,
            other_us: elapsed - scored,
            total_us: self.probe_us + elapsed,
        }
    }

    fn complete(&self, shared: &Shared, mut result: Result<RankResponse, ServeError>) {
        if self.finished.swap(true, Ordering::AcqRel) {
            return; // another path already delivered
        }
        if let (Ok(resp), Some(ctx)) = (&mut result, &self.trace) {
            let b = self.breakdown();
            resp.stages = Some(b);
            // Stage histograms carry the trace as an exemplar, linking
            // "p99 queue wait is X" back to a concrete offending request.
            let t = ctx.trace_id;
            let h = stage_hists();
            h.probe.record_traced(b.probe_us as f64 * 1e-6, t);
            h.queue.record_traced(b.queue_us as f64 * 1e-6, t);
            h.batch.record_traced(b.batch_us as f64 * 1e-6, t);
            h.score.record_traced(b.score_us as f64 * 1e-6, t);
            h.other.record_traced(b.other_us as f64 * 1e-6, t);
        }
        // Latency records whenever obs is on *or* the request carried a
        // trace — the same condition under which the stage histograms above
        // fill, so snapshots stay mutually consistent.
        if ls_obs::enabled() || self.trace.is_some() {
            let trace = self.trace.as_ref().map_or(0, |c| c.trace_id);
            stage_hists()
                .latency
                .record_traced(self.submitted.elapsed().as_secs_f64(), trace);
            ls_obs::counter("serve.responses").incr();
        }
        // Release the queue slot *before* waking the client: a closed-loop
        // client that submits its next request immediately after waking must
        // see the slot it just freed, or it would be shed spuriously.
        let mut st = lock_safe(&shared.state);
        st.inflight -= 1;
        st.active.remove(&self.seq);
        let depth = st.inflight;
        drop(st);
        ls_obs::gauge("serve.queue_depth").set(depth as f64);
        let mut slot = lock_safe(&self.result);
        debug_assert!(slot.value.is_none(), "job completed twice");
        if let Some(cb) = slot.notify.take() {
            // Async consumer: hand over the result outside the lock (the
            // callback may do I/O bookkeeping like waking an event loop).
            drop(slot);
            cb(result);
        } else {
            slot.value = Some(result);
            drop(slot);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Result<RankResponse, ServeError> {
        let mut slot = lock_safe(&self.result);
        loop {
            if let Some(r) = slot.value.take() {
                return r;
            }
            slot = wait_safe(&self.done, slot);
        }
    }
}

/// A contiguous chunk of one job's lineage, ready for a worker.
struct WorkItem {
    job: Arc<Job>,
    start: usize,
    end: usize,
}

struct State {
    pending: VecDeque<Arc<Job>>,
    work: VecDeque<WorkItem>,
    /// Traced jobs currently in flight, keyed by job sequence number — the
    /// admin protocol's active-trace listing.
    active: std::collections::HashMap<u64, Arc<Job>>,
    /// Admitted but unanswered requests (the admission-control quantity).
    inflight: usize,
    /// Jobs drained from `pending` that the batcher has not yet expanded
    /// into work items; keeps workers from exiting early on shutdown.
    batching: usize,
    paused: bool,
    shutdown: bool,
    cache: LruCache<RankKey, RankResponse>,
    /// Model generation the cache's entries were scored under. A finalizing
    /// job whose pinned generation differs (its model was swapped out while
    /// it was in flight) answers its client but must not insert — the cache
    /// only ever replays the *current* snapshot's scores.
    cache_generation: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled on submit, pause/resume and shutdown; the batcher waits here.
    batcher_cv: Condvar,
    /// Signaled when work items are published; workers wait here.
    worker_cv: Condvar,
    cfg: ServeConfig,
    /// The live model snapshot, hot-swappable at runtime. Guarded by a
    /// mutex so the (bundle, generation) pair is always read consistently;
    /// the critical section is two pointer copies — `Arc::clone` + a load —
    /// so it is never a scoring bottleneck.
    model: Mutex<Arc<ModelBundle>>,
    /// Bumped under the `model` lock on every swap.
    generation: AtomicU64,
    /// The online-learning engine (WAL + trainer), attached at most once by
    /// [`Server::enable_online`].
    online: OnceLock<Arc<crate::online::OnlineState>>,
    /// Fault-injection seam: every scoring and polling step consults this
    /// ([`NoFaults`] in production — a virtual call per chunk, nothing more).
    injector: Arc<dyn Injector>,
    /// Trips to the degraded path after repeated scoring failures.
    breaker: CircuitBreaker,
    /// Model-free scorer used while the breaker is open.
    fallback: Option<Arc<dyn FallbackScorer>>,
    /// Compiled-circuit store backing the exact tier (and shape probes) of
    /// SLO-budgeted requests; `None` disables the tiered path entirely.
    circuit: Option<Arc<CircuitStore>>,
    /// Live worker threads; respawned replacements are pushed here so
    /// shutdown can join them too.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// The current model snapshot and its generation, read as a consistent
    /// pair: jobs pin the result, so every fact of a request is scored by
    /// exactly one snapshot even if a swap lands mid-flight.
    fn model(&self) -> (Arc<ModelBundle>, u64) {
        let m = lock_safe(&self.model);
        (m.clone(), self.generation.load(Ordering::Acquire))
    }
}

/// Outcome of admission: either served from cache or queued.
enum Admitted {
    Done(RankResponse),
    Queued(Arc<Job>),
}

/// A cloneable client handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Rank a lineage, blocking until the response is ready (or the request
    /// is rejected by admission control).
    pub fn rank(&self, req: RankRequest) -> Result<RankResponse, ServeError> {
        match self.submit(req)? {
            Admitted::Done(resp) => Ok(resp),
            Admitted::Queued(job) => job.wait(),
        }
    }

    /// Rank a lineage without blocking the submitting thread: `done` is
    /// invoked exactly once with the result. Inline outcomes (cache hits,
    /// admission rejections, empty lineages, tiered answers) call it
    /// synchronously on this thread; queued work calls it later from
    /// whichever pipeline thread completes the job. The TCP event-loop
    /// shards depend on this — one shard thread keeps thousands of
    /// connections moving while scoring happens on the worker pool.
    pub fn rank_async(
        &self,
        req: RankRequest,
        done: impl FnOnce(Result<RankResponse, ServeError>) + Send + 'static,
    ) {
        match self.submit(req) {
            Ok(Admitted::Done(resp)) => done(Ok(resp)),
            Err(e) => done(Err(e)),
            Ok(Admitted::Queued(job)) => {
                let mut slot = lock_safe(&job.result);
                if let Some(r) = slot.value.take() {
                    // Completed between submit and registration: deliver now.
                    drop(slot);
                    done(r);
                } else {
                    slot.notify = Some(Box::new(done));
                }
            }
        }
    }

    /// Admission control: probe the cache, enforce the queue bound, enqueue.
    fn submit(&self, req: RankRequest) -> Result<Admitted, ServeError> {
        ls_obs::counter("serve.requests").incr();
        if req.query_sql.is_empty() {
            return Err(ServeError::BadRequest("empty query".into()));
        }
        let (bundle, _) = self.shared.model();
        for &f in &req.lineage {
            if bundle.db.fact(f).is_none() {
                return Err(ServeError::BadRequest(format!("unknown fact id {}", f.0)));
            }
        }
        if req.lineage.is_empty() {
            // Nothing to score; answer inline without consuming queue depth.
            return Ok(Admitted::Done(RankResponse {
                scores: Vec::new(),
                ranking: Vec::new(),
                cached: false,
                degraded: false,
                stages: None,
                tier: None,
            }));
        }
        if let Some(resp) = self.try_tiered(&req)? {
            return Ok(Admitted::Done(resp));
        }
        // The submitting thread's trace (if any) rides with the job so every
        // downstream stage attributes to this request.
        let trace = ls_obs::TraceContext::current();
        let key = RankKey::new(
            req.query_sql.clone(),
            render_tuple(&req.tuple),
            &req.lineage,
        );
        let probe_start = Instant::now();
        let mut st = lock_safe(&self.shared.state);
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(hit) = st.cache.get(&key) {
            let mut resp = hit.clone();
            resp.cached = true;
            let probe_us = probe_start.elapsed().as_micros() as u64;
            resp.stages = trace.map(|ctx| {
                stage_hists()
                    .probe
                    .record_traced(probe_us as f64 * 1e-6, ctx.trace_id);
                StageBreakdown {
                    probe_us,
                    total_us: probe_us,
                    ..StageBreakdown::default()
                }
            });
            ls_obs::counter("serve.cache_hit").incr();
            return Ok(Admitted::Done(resp));
        }
        ls_obs::counter("serve.cache_miss").incr();
        if st.inflight >= self.shared.cfg.queue_depth {
            ls_obs::counter("serve.shed_overload").incr();
            return Err(ServeError::Overloaded);
        }
        st.inflight += 1;
        let depth = st.inflight;
        let n = req.lineage.len();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| Instant::now() + d);
        static NEXT_JOB: AtomicU64 = AtomicU64::new(1);
        let job = Arc::new(Job {
            key,
            seq: NEXT_JOB.fetch_add(1, Ordering::Relaxed),
            trace,
            probe_us: probe_start.elapsed().as_micros() as u64,
            drained_us: AtomicU64::new(0),
            dispatched_us: AtomicU64::new(0),
            scored_us: AtomicU64::new(0),
            submitted: Instant::now(),
            deadline,
            ctx: OnceLock::new(),
            pinned: OnceLock::new(),
            scores: (0..n).map(|_| AtomicU64::new(0)).collect(),
            remaining: AtomicUsize::new(n),
            finished: AtomicBool::new(false),
            result: Mutex::new(ResultSlot::default()),
            done: Condvar::new(),
            query_sql: req.query_sql,
            tuple: req.tuple,
            lineage: req.lineage,
        });
        if job.trace.is_some() {
            st.active.insert(job.seq, job.clone());
        }
        st.pending.push_back(job.clone());
        drop(st);
        ls_obs::gauge("serve.queue_depth").set(depth as f64);
        self.shared.batcher_cv.notify_one();
        Ok(Admitted::Queued(job))
    }

    /// The SLO tier fast path: when the request carries a latency budget
    /// and its provenance, and a circuit store is attached, pick the most
    /// accurate tier that fits and — for exact and sampled — answer inline
    /// on the submitting thread, without consuming queue depth or touching
    /// the ranking cache (exact/sampled scores are Shapley values, not
    /// model scores; caching them under the same key would poison learned
    /// replays). A `Learned` decision returns `None` and rides the batched
    /// pipeline like any other request.
    fn try_tiered(&self, req: &RankRequest) -> Result<Option<RankResponse>, ServeError> {
        let (Some(store), Some(budget)) = (&self.shared.circuit, req.slo) else {
            return Ok(None);
        };
        if req.tuple.derivations.is_empty() {
            return Ok(None);
        }
        if lock_safe(&self.shared.state).shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let start = Instant::now();
        let dnf = Dnf::from_monomials(req.tuple.derivations.clone());
        let players = dnf.variables();
        if players.is_empty() {
            return Ok(None);
        }
        let shape = CanonicalShape::of(&dnf);
        let (circuit_cached, scores_cached) = store.probe(&shape);
        let cache = CacheState {
            circuit_cached,
            scores_cached,
            model_available: true,
        };
        let decision = self
            .shared
            .cfg
            .slo_policy
            .choose(players.len(), dnf.len(), budget, cache);
        let fact_scores = match decision.tier {
            Tier::Learned => {
                ls_obs::counter("serve.tier.learned").incr();
                return Ok(None);
            }
            Tier::Exact => {
                ls_obs::counter("serve.tier.exact").incr();
                ls_shapley::shapley_values_stored(store, &dnf)
            }
            Tier::Sampled => {
                ls_obs::counter("serve.tier.sampled").incr();
                let (bundle, _) = self.shared.model();
                let db = &bundle.db;
                // Seeded by the canonical shape: identical requests sample
                // identically, so tiered responses stay reproducible.
                let seed = shape.key.0 ^ shape.key.1;
                shapley_stratified(
                    &dnf,
                    |f| db.fact_table_idx(f).map_or(u64::MAX, |t| t as u64),
                    decision.samples,
                    seed,
                )
                .scores
            }
        };
        // Align with the request's lineage order (facts outside the
        // provenance contribute nothing, exactly as in the exact engine).
        let scores: Vec<f64> = req
            .lineage
            .iter()
            .map(|f| fact_scores.get(f).copied().unwrap_or(0.0))
            .collect();
        let mut ranked = FactScores::new();
        for (i, &f) in req.lineage.iter().enumerate() {
            ranked.insert(f, scores[i]);
        }
        let ranking = ls_shapley::rank_descending(&ranked);
        let stages = ls_obs::TraceContext::current().map(|ctx| {
            let score_us = start.elapsed().as_micros() as u64;
            stage_hists()
                .score
                .record_traced(score_us as f64 * 1e-6, ctx.trace_id);
            StageBreakdown {
                score_us,
                total_us: score_us,
                ..StageBreakdown::default()
            }
        });
        if ls_obs::enabled() {
            ls_obs::counter("serve.responses").incr();
        }
        Ok(Some(RankResponse {
            scores,
            ranking,
            cached: false,
            degraded: false,
            stages,
            tier: Some(decision.tier),
        }))
    }

    /// Current in-flight request count (admitted, unanswered).
    pub fn inflight(&self) -> usize {
        lock_safe(&self.shared.state).inflight
    }

    /// Hot-swap the model snapshot, returning the new generation. The swap
    /// is zero-downtime and never drops or mis-scores a request:
    ///
    /// * jobs already dispatched keep scoring on their **pinned** snapshot —
    ///   every response is bit-identical to whichever snapshot scored it;
    /// * jobs dispatched after the swap pin the new snapshot;
    /// * the ranking cache is cleared under the same state lock that gates
    ///   inserts, and its generation is bumped, so scores from the old
    ///   snapshot can never be replayed as the new one's.
    pub fn swap_model(&self, bundle: Arc<ModelBundle>) -> u64 {
        let mut m = lock_safe(&self.shared.model);
        *m = bundle;
        let generation = self.shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
        // Still holding the model lock: a batcher pinning "new bundle, old
        // generation" (or vice versa) is impossible.
        let mut st = lock_safe(&self.shared.state);
        st.cache.clear();
        st.cache_generation = generation;
        drop(st);
        drop(m);
        ls_obs::counter("wal.swaps").incr();
        ls_obs::gauge("serve.model_generation").set(generation as f64);
        generation
    }

    /// The generation of the currently-live model snapshot (0 = the bundle
    /// the server started with).
    pub fn model_generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Submit one feedback record to the online-learning WAL. Returns the
    /// record's log sequence number once it is **crash-durable** (appended
    /// and fsynced) — the online trainer picks it up asynchronously.
    /// Fails typed when the server runs without [`Server::enable_online`].
    pub fn feedback(&self, rec: &ls_core::FeedbackRecord) -> Result<u64, ServeError> {
        let Some(online) = self.shared.online.get() else {
            return Err(ServeError::BadRequest(
                "online learning is not enabled on this server".into(),
            ));
        };
        online.append(rec)
    }

    /// The live snapshot and its generation (what the online engine clones
    /// the serving `Database` and `max_len` from when loading a new one).
    pub(crate) fn current_model(&self) -> (Arc<ModelBundle>, u64) {
        self.shared.model()
    }

    /// Operational state as a JSON object (the admin protocol's `state`
    /// answer): queue and pool occupancy, cache fill, breaker state.
    pub fn state_json(&self) -> String {
        let cfg = &self.shared.cfg;
        let (inflight, pending, work, paused, shutdown, cache_len, cache_cap) = {
            let st = lock_safe(&self.shared.state);
            (
                st.inflight,
                st.pending.len(),
                st.work.len(),
                st.paused,
                st.shutdown,
                st.cache.len(),
                st.cache.capacity(),
            )
        };
        let breaker = match self.shared.breaker.state() {
            ls_fault::BreakerState::Closed => "closed",
            ls_fault::BreakerState::Open => "open",
            ls_fault::BreakerState::HalfOpen => "half-open",
        };
        let online = match self.shared.online.get() {
            None => String::from("null"),
            Some(o) => o.status_json(),
        };
        format!(
            concat!(
                "{{\"inflight\":{},\"queue_depth\":{},\"pending\":{},\"work_items\":{},",
                "\"paused\":{},\"shutdown\":{},\"workers\":{},\"generation\":{},",
                "\"cache\":{{\"len\":{},\"capacity\":{}}},\"breaker\":\"{}\",",
                "\"online\":{}}}"
            ),
            inflight,
            cfg.queue_depth,
            pending,
            work,
            paused,
            shutdown,
            cfg.workers,
            self.model_generation(),
            cache_len,
            cache_cap,
            breaker,
            online
        )
    }

    /// Active (admitted, unanswered) traced requests as a JSON array: trace
    /// id, age, lineage size, and how far through the pipeline each has got.
    pub fn traces_json(&self) -> String {
        let jobs: Vec<Arc<Job>> = {
            let st = lock_safe(&self.shared.state);
            st.active.values().cloned().collect()
        };
        let mut entries: Vec<(u64, String)> = jobs
            .iter()
            .filter_map(|job| {
                let ctx = job.trace.as_ref()?;
                let b = job.breakdown();
                Some((
                    job.seq,
                    format!(
                        concat!(
                            "{{\"trace\":\"{:016x}\",\"seq\":{},\"facts\":{},",
                            "\"age_us\":{},\"queue_us\":{},\"batch_us\":{},\"score_us\":{}}}"
                        ),
                        ctx.trace_id,
                        job.seq,
                        job.lineage.len(),
                        job.submitted.elapsed().as_micros() as u64,
                        b.queue_us,
                        b.batch_us,
                        b.score_us,
                    ),
                ))
            })
            .collect();
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        let mut out = String::from("[");
        for (i, (_, e)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push(']');
        out
    }
}

/// A running serving instance: one micro-batcher plus a worker pool.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start the batcher and worker threads.
    ///
    /// # Panics
    /// Panics if `cfg.workers == 0` or `cfg.queue_depth == 0`.
    pub fn start(bundle: Arc<ModelBundle>, cfg: ServeConfig) -> Server {
        Server::start_with(bundle, cfg, Arc::new(NoFaults), None)
    }

    /// [`Server::start`] with an explicit fault injector and an optional
    /// degraded-mode fallback scorer. Production passes [`NoFaults`]; chaos
    /// tests pass a compiled `FaultPlan`. With `breaker_failures > 0` and a
    /// fallback, repeated scoring failures flip dispatch to the fallback and
    /// responses are marked [`RankResponse::degraded`] until a half-open
    /// probe of the model path succeeds.
    pub fn start_with(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        injector: Arc<dyn Injector>,
        fallback: Option<Arc<dyn FallbackScorer>>,
    ) -> Server {
        Server::start_full(bundle, cfg, injector, fallback, None)
    }

    /// [`Server::start`] with a compiled-circuit store attached: requests
    /// carrying an [`RankRequest::slo`] budget and provenance are answered
    /// through the three-tier policy (exact / learned / sampled), with the
    /// chosen tier recorded on the response.
    pub fn start_with_store(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        store: Arc<CircuitStore>,
    ) -> Server {
        Server::start_full(bundle, cfg, Arc::new(NoFaults), None, Some(store))
    }

    /// The fully-general constructor behind every `start*` variant.
    pub fn start_full(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        injector: Arc<dyn Injector>,
        fallback: Option<Arc<dyn FallbackScorer>>,
        circuit: Option<Arc<CircuitStore>>,
    ) -> Server {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.queue_depth >= 1, "need a positive queue depth");
        let breaker = CircuitBreaker::new(cfg.breaker_failures, cfg.breaker_cooldown);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                work: VecDeque::new(),
                active: std::collections::HashMap::new(),
                inflight: 0,
                batching: 0,
                paused: false,
                shutdown: false,
                cache: LruCache::new(cfg.cache_capacity),
                cache_generation: 0,
            }),
            batcher_cv: Condvar::new(),
            worker_cv: Condvar::new(),
            cfg,
            model: Mutex::new(bundle),
            generation: AtomicU64::new(0),
            online: OnceLock::new(),
            injector,
            breaker,
            fallback,
            circuit,
            workers: Mutex::new(Vec::new()),
        });
        let batcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ls-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher")
        };
        for i in 0..shared.cfg.workers {
            spawn_worker(&shared, i);
        }
        Server {
            shared,
            batcher: Some(batcher),
        }
    }

    /// A client handle (cheap to clone, usable from any thread).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: self.shared.clone(),
        }
    }

    /// The server's fault injector, shared with the online engine so the
    /// feedback WAL lives under the same chaos plan as the serving path.
    pub(crate) fn injector(&self) -> Arc<dyn Injector> {
        self.shared.injector.clone()
    }

    /// Attach the online engine (at most once per server).
    pub(crate) fn attach_online(&self, online: Arc<crate::online::OnlineState>) -> Result<(), ()> {
        self.shared.online.set(online).map_err(|_| ())
    }

    /// Current circuit-breaker state (for tests and operational probes).
    pub fn breaker_state(&self) -> ls_fault::BreakerState {
        self.shared.breaker.state()
    }

    /// Stop dispatching batches (submissions still accepted up to the queue
    /// bound). Used for maintenance windows — and by the overload tests to
    /// fill the queue deterministically.
    pub fn pause(&self) {
        lock_safe(&self.shared.state).paused = true;
        self.shared.batcher_cv.notify_all();
    }

    /// Resume dispatching after [`Server::pause`].
    pub fn resume(&self) {
        lock_safe(&self.shared.state).paused = false;
        self.shared.batcher_cv.notify_all();
    }

    /// Graceful shutdown: stop admitting, serve everything already admitted,
    /// then join the batcher and workers.
    pub fn shutdown(mut self) {
        // Stop the online trainer first: it swaps models through a
        // ServeHandle and must not race the drain below.
        if let Some(online) = self.shared.online.get() {
            online.stop_and_join();
        }
        {
            let mut st = lock_safe(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.batcher_cv.notify_all();
        self.shared.worker_cv.notify_all();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        // The batcher exits only after `pending` is fully drained; wake the
        // workers again in case they raced the last work publication.
        self.shared.worker_cv.notify_all();
        // Respawned workers push fresh handles while we join, so drain until
        // the list stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = lock_safe(&self.shared.workers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for w in handles {
                let _ = w.join();
            }
        }
    }
}

/// Spawn one worker thread, registering its handle for shutdown. A
/// [`RespawnGuard`] inside the thread replaces it if a panic ever escapes
/// the per-chunk `catch_unwind` (so the pool never shrinks silently).
fn spawn_worker(shared: &Arc<Shared>, idx: usize) {
    let shared_for_thread = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("ls-serve-worker-{idx}"))
        .spawn(move || {
            let guard = RespawnGuard {
                shared: shared_for_thread.clone(),
                idx,
            };
            worker_loop(&shared_for_thread);
            std::mem::forget(guard); // normal exit: no respawn
        })
        .expect("spawn worker");
    lock_safe(&shared.workers).push(handle);
}

/// Replaces a worker thread that died by panic. `Drop` runs during unwind,
/// so the pool heals without any supervisor thread.
struct RespawnGuard {
    shared: Arc<Shared>,
    idx: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        ls_obs::counter("serve.worker_respawn").incr();
        let draining = lock_safe(&self.shared.state).shutdown;
        if !draining {
            spawn_worker(&self.shared, self.idx);
        }
    }
}

/// The micro-batcher: coalesce pending jobs up to `max_batch_items` facts or
/// `batch_deadline`, whichever hits first, then expand them into per-worker
/// chunks.
fn batcher_loop(shared: &Shared) {
    let cfg = &shared.cfg;
    loop {
        let mut st = lock_safe(&shared.state);
        // Wait for work (or for a resume, or for shutdown — which overrides
        // pause so draining always proceeds).
        while (st.pending.is_empty() || st.paused) && !st.shutdown {
            st = wait_safe(&shared.batcher_cv, st);
        }
        if st.pending.is_empty() && st.shutdown {
            break;
        }
        // Micro-batch window: from first sight of a nonempty queue, wait for
        // more work up to the deadline or the item budget. Shutdown skips
        // the wait — drain as fast as possible.
        let window_ends = Instant::now() + cfg.batch_deadline;
        loop {
            if st.shutdown {
                break;
            }
            let items: usize = st.pending.iter().map(|j| j.lineage.len()).sum();
            if items >= cfg.max_batch_items {
                break;
            }
            let now = Instant::now();
            if now >= window_ends {
                break;
            }
            let (guard, timed_out) = wait_timeout_safe(&shared.batcher_cv, st, window_ends - now);
            st = guard;
            if timed_out {
                break;
            }
        }
        // Drain one batch's worth of jobs.
        let mut batch = Vec::new();
        let mut items = 0usize;
        while let Some(job) = st.pending.front() {
            let n = job.lineage.len();
            if !batch.is_empty() && items + n > cfg.max_batch_items {
                break;
            }
            items += n;
            let job = st.pending.pop_front().unwrap();
            // Queue stage ends here: the job now belongs to batch assembly.
            job.mark(&job.drained_us);
            batch.push(job);
        }
        st.batching += batch.len();
        drop(st);

        if ls_obs::enabled() && items > 0 {
            ls_obs::histogram("serve.batch_items").record(items as f64);
        }
        let now = Instant::now();
        let mut work = Vec::new();
        for job in batch {
            if job.deadline.is_some_and(|d| now > d) {
                ls_obs::counter("serve.shed_deadline").incr();
                job.complete(shared, Err(ServeError::DeadlineExceeded));
                continue;
            }
            // Circuit open: the model path is unhealthy. Score inline via
            // the fallback (or fail typed), never touching the worker pool.
            if !shared.breaker.allow_primary() {
                degrade(shared, &job);
                continue;
            }
            // Hoist the query/tuple-side work out of the per-fact loop, once
            // per job rather than once per fact (or per chunk). The model
            // snapshot is pinned here, in the same breath: every chunk of
            // this job scores on this bundle, whatever swaps land later.
            let _trace = job.trace.as_ref().map(ls_obs::TraceContext::attach);
            let (bundle, generation) = shared.model();
            let ctx = ScoreContext::new(&bundle.tokenizer, &job.query_sql, &job.tuple);
            let _ = job.ctx.set(ctx);
            let _ = job.pinned.set((bundle, generation));
            let n = job.lineage.len();
            let chunk = n.div_ceil(cfg.workers).max(1);
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                work.push(WorkItem {
                    job: job.clone(),
                    start,
                    end,
                });
                start = end;
            }
            // Batch stage ends: the job's chunks are about to be published.
            job.mark(&job.dispatched_us);
        }
        let mut st = lock_safe(&shared.state);
        st.batching = 0;
        st.work.extend(work);
        drop(st);
        shared.worker_cv.notify_all();
    }
}

/// Serve one job from the fallback scorer while the breaker is open. The
/// response is marked degraded and is **not** cached: once the model path
/// recovers, the same key must be scored by the model again.
fn degrade(shared: &Shared, job: &Arc<Job>) {
    ls_obs::counter("serve.degraded.responses").incr();
    // The fallback scores inline on the batcher thread: dispatch and score
    // stages collapse onto it.
    job.mark(&job.dispatched_us);
    let result = match &shared.fallback {
        Some(fb) => match fb.score(&job.query_sql, &job.lineage) {
            Some(scores) => {
                let mut fact_scores = FactScores::new();
                for (i, &f) in job.lineage.iter().enumerate() {
                    fact_scores.insert(f, scores[i]);
                }
                let ranking = ls_shapley::rank_descending(&fact_scores);
                Ok(RankResponse {
                    scores,
                    ranking,
                    cached: false,
                    degraded: true,
                    stages: None,
                    tier: None,
                })
            }
            None => Err(ServeError::Internal(format!(
                "degraded: fallback scorer \"{}\" could not answer",
                fb.name()
            ))),
        },
        None => Err(ServeError::Internal(
            "degraded: circuit open and no fallback scorer configured".into(),
        )),
    };
    if result.is_err() {
        ls_obs::counter("serve.degraded.errors").incr();
    }
    job.mark(&job.scored_us);
    job.complete(shared, result);
}

/// A worker: pull fact chunks, score them with a thread-local scratch into
/// the job's request-order slots, finalize on the last chunk.
///
/// Scoring runs inside `catch_unwind`, so a panic — injected or genuine —
/// fails exactly the job whose chunk was being scored and leaves the worker
/// alive for the next item. The `serve.worker.poll` site is *outside* that
/// boundary on purpose: a fault there kills the whole thread (before any
/// work item is held), exercising the [`RespawnGuard`] path.
fn worker_loop(shared: &Shared) {
    loop {
        match shared.injector.decide("serve.worker.poll") {
            FaultAction::Panic => panic!("injected worker-thread abort"),
            FaultAction::Delay(d) => std::thread::sleep(d),
            _ => {}
        }
        let item = {
            let mut st = lock_safe(&shared.state);
            loop {
                if let Some(item) = st.work.pop_front() {
                    break item;
                }
                if st.shutdown && st.pending.is_empty() && st.batching == 0 {
                    return;
                }
                st = wait_safe(&shared.worker_cv, st);
            }
        };
        let job = item.job.clone();
        match catch_unwind(AssertUnwindSafe(|| score_chunk(shared, &item))) {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                // Injected I/O-style error: typed failure for this job only.
                shared.breaker.on_failure();
                ls_obs::counter("serve.worker_error").incr();
                job.complete(shared, Err(ServeError::Internal(msg)));
            }
            Err(_) => {
                shared.breaker.on_failure();
                ls_obs::counter("serve.worker_panic").incr();
                job.complete(
                    shared,
                    Err(ServeError::Internal("worker panicked while scoring".into())),
                );
            }
        }
    }
}

/// Score one chunk into the job's request-order slots; the worker that
/// zeroes `remaining` finalizes. `Err` carries an injected scoring fault.
///
/// The scorer is built per chunk from the job's **pinned** bundle (cheap:
/// [`LineageScorer::new`] only allocates thread-local scratch) rather than
/// held for the worker thread's lifetime — that is what lets a hot-swap
/// land between chunks of *different* jobs while every chunk of *one* job
/// scores on one snapshot.
fn score_chunk(shared: &Shared, item: &WorkItem) -> Result<(), String> {
    let job = &item.job;
    // Adopt the request's trace for this chunk: the worker thread never saw
    // the submitting span, so the explicit context is the only way spans and
    // histogram samples recorded here attribute to the right request.
    let _trace = job.trace.as_ref().map(ls_obs::TraceContext::attach);
    let _span = ls_obs::enabled()
        .then(|| ls_obs::span("serve.worker.chunk").with("facts", (item.end - item.start) as u64));
    let ctx = job.ctx.get().expect("context built before dispatch");
    let (bundle, _) = job.pinned.get().expect("bundle pinned before dispatch");
    let mut scorer =
        LineageScorer::new(&bundle.model, &bundle.tokenizer, &bundle.db, bundle.max_len);
    for i in item.start..item.end {
        match shared.injector.decide("serve.worker.score") {
            FaultAction::Panic => panic!("injected worker panic"),
            FaultAction::Error => return Err("injected scoring fault".into()),
            FaultAction::Delay(d) => std::thread::sleep(d),
            _ => {}
        }
        let score = scorer.score_fact(ctx, job.lineage[i]);
        job.scores[i].store(score.to_bits(), Ordering::Release);
    }
    let n = item.end - item.start;
    ls_obs::counter("serve.facts_scored").add(n as u64);
    if job.remaining.fetch_sub(n, Ordering::AcqRel) == n {
        finalize(shared, job);
    }
    Ok(())
}

/// Assemble the response exactly the way serial `rank_lineage` does, cache
/// it, and wake the client.
fn finalize(shared: &Shared, job: &Arc<Job>) {
    // A job that already failed (panic in a sibling chunk) must not reach
    // the cache with partially-written slots.
    if job.finished.load(Ordering::Acquire) {
        return;
    }
    // Scoring ends with the finalizing chunk; what remains is assembly.
    job.mark(&job.scored_us);
    let scores: Vec<f64> = job
        .scores
        .iter()
        .map(|s| f64::from_bits(s.load(Ordering::Acquire)))
        .collect();
    // Identical assembly to `predict_scores` + `rank_descending`: insert in
    // lineage order, sort by descending score with fact-id tie-break.
    let mut fact_scores = FactScores::new();
    for (i, &f) in job.lineage.iter().enumerate() {
        fact_scores.insert(f, scores[i]);
    }
    let ranking = ls_shapley::rank_descending(&fact_scores);
    let resp = RankResponse {
        scores,
        ranking,
        cached: false,
        degraded: false,
        stages: None,
        tier: Some(Tier::Learned),
    };
    {
        // Generation gate: a job that was scored by a snapshot the server
        // has since swapped out still answers its client (bit-identical to
        // the snapshot that scored it), but its scores must not enter the
        // cache — cached entries always replay the live snapshot.
        let generation = job.pinned.get().map_or(0, |(_, g)| *g);
        let mut st = lock_safe(&shared.state);
        if generation == st.cache_generation {
            st.cache.insert(job.key.clone(), resp.clone());
        } else {
            ls_obs::counter("serve.cache_insert_stale_gen").incr();
        }
    }
    shared.breaker.on_success();
    job.complete(shared, Ok(resp));
}
