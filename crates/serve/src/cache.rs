//! A zero-dependency LRU cache for computed rankings.
//!
//! Classic design: a `HashMap` from key to slot index plus an intrusive
//! doubly-linked recency list threaded through a slab of slots. `get` and
//! `insert` are O(1); eviction pops the list tail. Capacity 0 disables the
//! cache entirely (every lookup misses, every insert is dropped), which is
//! how the server runs in "cache off" benchmarking mode.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use ls_relational::FactId;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every entry (capacity unchanged). Used when the model snapshot
    /// behind the cached values is swapped out.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when at capacity. Returns the evicted entry, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        let mut evicted = None;
        let slot = if self.map.len() >= self.capacity {
            // Reuse the LRU slot.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            let old = std::mem::replace(
                &mut self.slots[i],
                Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            evicted = Some((old.key, old.value));
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }
}

/// Cache key of a ranking request: the query SQL, the rendered output
/// tuple, and the lineage — hashed through a precomputed 64-bit lineage
/// digest (the full fact list is retained for equality, so a digest
/// collision can never alias two different lineages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankKey {
    /// Canonical SQL text of the query.
    pub query_sql: String,
    /// Rendered output tuple (`(v1, v2, …)`).
    pub tuple_text: String,
    /// The lineage fact ids, in request order.
    pub lineage: Box<[FactId]>,
    lineage_hash: u64,
}

impl RankKey {
    /// Build a key (computes the lineage digest once).
    pub fn new(query_sql: String, tuple_text: String, lineage: &[FactId]) -> Self {
        let mut h = DefaultHasher::new();
        for f in lineage {
            h.write_u32(f.0);
        }
        RankKey {
            query_sql,
            tuple_text,
            lineage: lineage.into(),
            lineage_hash: h.finish(),
        }
    }
}

impl Hash for RankKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.query_sql.hash(state);
        self.tuple_text.hash(state);
        state.write_u64(self.lineage_hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.is_empty());
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now MRU
        let evicted = c.insert(3, "c"); // evicts 2, the LRU
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 1 becomes MRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.insert(1, 1), None);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_and_stays_usable() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.capacity(), 2);
        c.insert(3, 30);
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn slab_reuse_keeps_list_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..50 {
            c.insert(i, i);
            // Touch the oldest surviving entry to churn the list.
            if i >= 2 {
                c.get(&(i - 2));
            }
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn rank_key_equality_is_collision_proof() {
        let a = RankKey::new("q".into(), "t".into(), &[FactId(1), FactId(2)]);
        let b = RankKey::new("q".into(), "t".into(), &[FactId(2), FactId(1)]);
        let c = RankKey::new("q".into(), "t".into(), &[FactId(1), FactId(2)]);
        assert_ne!(a, b, "order matters");
        assert_eq!(a, c);
        let mut cache: LruCache<RankKey, u32> = LruCache::new(4);
        cache.insert(a.clone(), 1);
        assert_eq!(cache.get(&c), Some(&1));
        assert_eq!(cache.get(&b), None);
    }
}
