//! Readiness-driven connection shards for the TCP front-end.
//!
//! Each shard is one thread owning a [`Poller`] and a slab of nonblocking
//! connections. The blocking acceptor round-robins new sockets to shards
//! through a [`Mailbox`]; decoded rank requests leave the shard through
//! [`ServeHandle::rank_async`] and come back as encoded response bytes via
//! the same mailbox, so the shard thread never blocks on scoring — it only
//! parses frames, runs the per-connection state machines, and moves bytes.
//!
//! ## Connection state machine
//!
//! ```text
//!   Greeting ──LSBP hello──▶ Binary ─┐
//!      │ (any other bytes)           ├─▶ frames ─▶ dispatch ─▶ outbuf
//!      └────────────────────▶ Json ──┘
//! ```
//!
//! Partial frames resume across wakeups (`inbuf` + consumed offset);
//! responses drain opportunistically after every event and under
//! `EPOLLOUT`-style write readiness otherwise. When a connection buffers
//! more than `high_water` unsent bytes its read interest is dropped —
//! write backpressure propagates to the peer's TCP window instead of
//! growing the heap — and reading resumes below `low_water`.
//!
//! ## Failure containment (unchanged from the thread-per-connection era)
//!
//! Garbage *inside* a well-formed frame answers a typed error and keeps
//! the connection (the framing layer is still in sync, on both protocols).
//! A torn framing layer — oversized length prefix, EOF mid-frame, injected
//! I/O fault — poisons exactly that connection: it is deregistered and
//! dropped, the listener and every other connection keep serving. The
//! `ls-fault` injector seams sit where they always did: every read passes
//! `serve.tcp.read`, every write `serve.tcp.write`.

use crate::poller::{drain_wake, Event, Interest, Poller, Waker};
use crate::proto::{
    self, AdminCommand, Frame, Protocol, BINARY_VERSION, HELLO_LEN, MAGIC, MAX_FRAME,
};
use crate::server::{ServeError, ServeHandle};
use crate::tcp::TcpOptions;
use ls_fault::{lock_safe, FaultyRead, FaultyWrite, Injector};
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Reserved token for the shard's wakeup pipe.
const WAKE_TOKEN: u64 = u64::MAX;
/// Bytes read per connection per wakeup before yielding to other
/// connections (level-triggered readiness re-notifies on leftovers).
const READ_BUDGET: usize = 256 * 1024;
/// One read() granule.
const READ_CHUNK: usize = 16 * 1024;

thread_local! {
    /// Which shard this thread *is* (usize::MAX elsewhere): lets a
    /// completion callback that runs inline on the shard thread skip the
    /// wakeup write — the loop drains its own mailbox every iteration.
    static CURRENT_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Work arriving at a shard from other threads.
pub(crate) enum Inbound {
    /// A freshly accepted socket (nodelay already set by the acceptor).
    Conn(TcpStream),
    /// Encoded response bytes for connection `token`, valid only while the
    /// slot's generation still matches (a late completion for a closed
    /// connection must never reach the slot's next tenant).
    Done {
        token: u64,
        gen: u32,
        bytes: Vec<u8>,
    },
}

/// A shard's inbox plus the waker that unblocks its poller.
pub(crate) struct Mailbox {
    shard: usize,
    q: Mutex<VecDeque<Inbound>>,
    waker: Waker,
}

impl Mailbox {
    pub(crate) fn new(shard: usize, waker: Waker) -> Mailbox {
        Mailbox {
            shard,
            q: Mutex::new(VecDeque::new()),
            waker,
        }
    }

    pub(crate) fn push(&self, msg: Inbound) {
        lock_safe(&self.q).push_back(msg);
        // Cross-thread senders must interrupt the poller; the shard's own
        // thread drains the queue at the end of the running iteration.
        if CURRENT_SHARD.with(Cell::get) != self.shard {
            self.waker.wake();
        }
    }

    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// Why a connection is being closed.
enum Close {
    /// Peer finished cleanly at a frame boundary with nothing in flight.
    Clean,
    /// Framing torn: oversized prefix, EOF mid-frame, I/O error.
    Torn,
}

enum Mode {
    /// Nothing decoded yet: the first bytes pick the protocol.
    Greeting,
    Json,
    Binary,
}

/// A cloneable view of one socket that costs no extra file descriptor.
/// `try_clone` would dup(2) the fd — three descriptors per connection sinks
/// a 10k-connection process straight into the rlimit — so the read and
/// write halves share the one fd through an `Arc` instead.
struct SharedStream(Arc<TcpStream>);

impl Read for SharedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self.0).read(buf)
    }
}

impl Write for SharedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self.0).flush()
    }
}

struct Conn {
    /// The registered fd, shared (not dup'd) with the fault-seamed halves.
    stream: Arc<TcpStream>,
    rd: FaultyRead<SharedStream>,
    wr: FaultyWrite<SharedStream>,
    mode: Mode,
    gen: u32,
    inbuf: Vec<u8>,
    /// Bytes of `inbuf` already consumed by the frame parser.
    in_off: usize,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    out_off: usize,
    /// Reused across frames for JSON payloads encoded inline on the shard.
    scratch: String,
    /// rank_async calls dispatched but not yet answered to the wire.
    pending: u32,
    read_closed: bool,
    /// Backpressured: read interest dropped until the outbuf drains.
    paused: bool,
    registered: Interest,
}

impl Conn {
    fn buffered(&self) -> usize {
        self.outbuf.len() - self.out_off
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.read_closed && !self.paused,
            writable: self.buffered() > 0,
        }
    }
}

struct ShardCtx {
    handle: ServeHandle,
    injector: Arc<dyn Injector>,
    mailbox: Arc<Mailbox>,
    high_water: usize,
    low_water: usize,
}

/// Everything a completion callback needs to route encoded bytes back to
/// the right connection — and nothing that borrows the shard.
struct Completion {
    mailbox: Arc<Mailbox>,
    token: u64,
    gen: u32,
    id: u64,
    protocol: Protocol,
    trace_id: u64,
}

fn leaked_name(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Run one shard's event loop until `stop` is set. Panics are confined to
/// the shard thread by the caller's `JoinHandle`.
pub(crate) fn shard_loop(
    shard: usize,
    handle: ServeHandle,
    injector: Arc<dyn Injector>,
    mailbox: Arc<Mailbox>,
    wake_rx: UnixStream,
    stop: Arc<AtomicBool>,
    opts: TcpOptions,
) {
    CURRENT_SHARD.with(|c| c.set(shard));
    let backend = opts.backend.unwrap_or_else(Poller::default_backend);
    let Ok(mut poller) = Poller::with_backend(backend) else {
        return;
    };
    if poller
        .register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
        .is_err()
    {
        return;
    }
    // Per-shard gauge names are interned once per shard lifetime (the obs
    // registry requires 'static names); shard counts are small and fixed.
    let registered_gauge = ls_obs::gauge(leaked_name(format!("serve.evloop.{shard}.registered")));
    let accept_gauge = ls_obs::gauge(leaked_name(format!("serve.evloop.{shard}.accept_queue")));
    let ready_hist = ls_obs::histogram("serve.evloop.ready_per_wake");

    let ctx = ShardCtx {
        handle,
        injector,
        mailbox: mailbox.clone(),
        high_water: opts.high_water,
        low_water: opts.low_water,
    };
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u32> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    loop {
        if poller.wait(&mut events, None).is_err() {
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if ls_obs::enabled() {
            ready_hist.record(events.len() as f64);
        }
        for &ev in &events {
            if ev.token == WAKE_TOKEN {
                drain_wake(&wake_rx);
                continue;
            }
            let slot = ev.token as usize;
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let verdict = handle_event(conn, ev, &ctx, slot);
            settle(
                verdict,
                slot,
                &mut conns,
                &mut free,
                &mut gens,
                &mut poller,
                registered_gauge,
            );
        }
        // Drain the mailbox: new connections and finished rank responses.
        // Same-thread pushes skip the wakeup write, so anything enqueued
        // while we process a batch — e.g. an inline tiered answer produced
        // by the synthetic readable pass below — must be picked up by
        // re-taking the queue until it is empty, or it would sit unserved
        // behind a blocked poller.
        loop {
            let mut inbox = {
                let mut q = lock_safe(&ctx.mailbox.q);
                std::mem::take(&mut *q)
            };
            if inbox.is_empty() {
                break;
            }
            accept_gauge.set(inbox.len() as f64);
            for msg in inbox.drain(..) {
                match msg {
                    Inbound::Conn(stream) => {
                        if let Some(slot) = install_conn(
                            stream,
                            &ctx,
                            &mut conns,
                            &mut free,
                            &mut gens,
                            &mut poller,
                        ) {
                            registered_gauge.set(gens.len() as f64 - free.len() as f64);
                            // The peer may already have sent bytes before we
                            // registered: process them now rather than waiting
                            // for the next readiness edge.
                            let conn = conns[slot].as_mut().expect("just installed");
                            let ev = Event {
                                token: slot as u64,
                                readable: true,
                                writable: false,
                            };
                            let verdict = handle_event(conn, ev, &ctx, slot);
                            settle(
                                verdict,
                                slot,
                                &mut conns,
                                &mut free,
                                &mut gens,
                                &mut poller,
                                registered_gauge,
                            );
                        }
                    }
                    Inbound::Done { token, gen, bytes } => {
                        let slot = token as usize;
                        let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                            continue; // connection closed while the job ran
                        };
                        if conn.gen != gen {
                            continue; // slot reused: response belongs to a ghost
                        }
                        conn.pending -= 1;
                        conn.outbuf.extend_from_slice(&bytes);
                        let verdict = after_io(conn, &ctx);
                        settle(
                            verdict,
                            slot,
                            &mut conns,
                            &mut free,
                            &mut gens,
                            &mut poller,
                            registered_gauge,
                        );
                    }
                }
            }
        }
        accept_gauge.set(0.0);
    }
}

/// Register a freshly accepted socket into the slab.
fn install_conn(
    stream: TcpStream,
    ctx: &ShardCtx,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    gens: &mut Vec<u32>,
    poller: &mut Poller,
) -> Option<usize> {
    if stream.set_nonblocking(true).is_err() {
        return None;
    }
    let stream = Arc::new(stream);
    let slot = free.pop().unwrap_or_else(|| {
        conns.push(None);
        gens.push(0);
        conns.len() - 1
    });
    if poller
        .register(stream.as_raw_fd(), slot as u64, Interest::READ)
        .is_err()
    {
        free.push(slot);
        return None;
    }
    conns[slot] = Some(Conn {
        rd: FaultyRead::new(
            SharedStream(stream.clone()),
            ctx.injector.clone(),
            "serve.tcp",
        ),
        wr: FaultyWrite::new(
            SharedStream(stream.clone()),
            ctx.injector.clone(),
            "serve.tcp",
        ),
        stream,
        mode: Mode::Greeting,
        gen: gens[slot],
        inbuf: Vec::new(),
        in_off: 0,
        outbuf: Vec::new(),
        out_off: 0,
        scratch: String::new(),
        pending: 0,
        read_closed: false,
        paused: false,
        registered: Interest::READ,
    });
    Some(slot)
}

/// Apply a connection verdict: keep it registered with the right interest,
/// or deregister, count, and drop it.
fn settle(
    verdict: Result<(), Close>,
    slot: usize,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    gens: &mut [u32],
    poller: &mut Poller,
    registered_gauge: &'static ls_obs::Gauge,
) {
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return;
    };
    match verdict {
        Ok(()) => {
            let want = conn.desired_interest();
            if want != conn.registered {
                // A fully idle connection (half-closed, waiting only on
                // in-flight worker results) is deregistered outright:
                // poll(2)/epoll report HUP regardless of the interest mask,
                // and a permanently-ready fd would spin the loop.
                let fd = conn.stream.as_raw_fd();
                let ok = if want == Interest::NONE {
                    poller.deregister(fd).is_ok()
                } else if conn.registered == Interest::NONE {
                    poller.register(fd, slot as u64, want).is_ok()
                } else {
                    poller.modify(fd, slot as u64, want).is_ok()
                };
                if ok {
                    conn.registered = want;
                }
            }
        }
        Err(close) => {
            if matches!(close, Close::Torn) {
                ls_obs::counter("serve.tcp.torn_connections").incr();
            }
            if conn.registered != Interest::NONE {
                let _ = poller.deregister(conn.stream.as_raw_fd());
            }
            conns[slot] = None;
            // Invalidate in-flight completions addressed to this slot.
            gens[slot] = gens[slot].wrapping_add(1);
            free.push(slot);
            registered_gauge.set(gens.len() as f64 - free.len() as f64);
        }
    }
}

/// React to one readiness event on a live connection.
fn handle_event(conn: &mut Conn, ev: Event, ctx: &ShardCtx, slot: usize) -> Result<(), Close> {
    if ev.readable && !conn.read_closed && !conn.paused {
        on_readable(conn, ctx, slot)?;
    }
    if ev.writable && conn.buffered() > 0 {
        flush_some(conn)?;
    }
    after_io(conn, ctx)
}

/// Drain the socket (bounded), then parse and dispatch completed frames.
fn on_readable(conn: &mut Conn, ctx: &ShardCtx, slot: usize) -> Result<(), Close> {
    let mut total = 0;
    loop {
        let filled = conn.inbuf.len();
        conn.inbuf.resize(filled + READ_CHUNK, 0);
        match conn.rd.read(&mut conn.inbuf[filled..]) {
            Ok(0) => {
                conn.inbuf.truncate(filled);
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.truncate(filled + n);
                total += n;
                if total >= READ_BUDGET {
                    break; // fairness: level-triggered readiness re-fires
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.inbuf.truncate(filled);
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                conn.inbuf.truncate(filled);
            }
            Err(_) => {
                conn.inbuf.truncate(filled);
                return Err(Close::Torn);
            }
        }
    }
    process_frames(conn, ctx, slot)
}

/// Parse every complete frame in `inbuf`, leaving partial bytes for the
/// next wakeup.
fn process_frames(conn: &mut Conn, ctx: &ShardCtx, slot: usize) -> Result<(), Close> {
    loop {
        let avail = &conn.inbuf[conn.in_off..];
        match conn.mode {
            Mode::Greeting => {
                if avail.len() < 4 {
                    break;
                }
                if avail[..4] == MAGIC {
                    if avail.len() < HELLO_LEN {
                        break; // hello arrives in pieces: resume later
                    }
                    let hello: [u8; HELLO_LEN] =
                        avail[..HELLO_LEN].try_into().expect("sized slice");
                    let Ok(peer_version) = proto::decode_hello(&hello) else {
                        return Err(Close::Torn); // magic right, version 0
                    };
                    conn.in_off += HELLO_LEN;
                    conn.mode = Mode::Binary;
                    // Ack with the highest version both sides speak.
                    let chosen = peer_version.min(BINARY_VERSION);
                    conn.outbuf.extend_from_slice(&proto::encode_hello(chosen));
                    ls_obs::counter("serve.tcp.binary_connections").incr();
                } else {
                    // Legacy peer: the first four bytes are a JSON frame's
                    // length prefix. Consume nothing; reparse as JSON.
                    conn.mode = Mode::Json;
                }
            }
            Mode::Json | Mode::Binary => {
                if avail.len() < 4 {
                    break;
                }
                let len = u32::from_le_bytes(avail[..4].try_into().expect("sized slice"));
                if len > MAX_FRAME {
                    // Corrupt or hostile prefix: never allocate it, tear
                    // this connection only.
                    return Err(Close::Torn);
                }
                let len = len as usize;
                if avail.len() < 4 + len {
                    break; // partial frame: resume when more bytes land
                }
                let start = conn.in_off + 4;
                conn.in_off = start + len;
                ls_obs::counter("serve.tcp.frames").incr();
                dispatch_frame(conn, start..start + len, ctx, slot)?;
            }
        }
    }
    // Compact consumed bytes once they dominate the buffer (cheap amortized
    // memmove; tiny offsets ride along until the buffer clears).
    if conn.in_off == conn.inbuf.len() {
        conn.inbuf.clear();
        conn.in_off = 0;
    } else if conn.in_off >= 64 * 1024 {
        conn.inbuf.drain(..conn.in_off);
        conn.in_off = 0;
    }
    Ok(())
}

/// Decode and act on one frame whose payload sits at `range` in `inbuf`.
fn dispatch_frame(
    conn: &mut Conn,
    range: Range<usize>,
    ctx: &ShardCtx,
    slot: usize,
) -> Result<(), Close> {
    // Split borrows: the payload lives in inbuf, replies go to outbuf.
    let Conn {
        inbuf,
        outbuf,
        scratch,
        pending,
        mode,
        gen,
        ..
    } = conn;
    let payload = &inbuf[range];
    let protocol = match mode {
        Mode::Json => Protocol::Json,
        Mode::Binary => Protocol::Binary,
        Mode::Greeting => unreachable!("frames only parse after the greeting"),
    };
    match protocol {
        Protocol::Json => match proto::decode_frame(payload) {
            Ok(Frame::Rank(id, req, trace)) => {
                submit_rank(ctx, slot, *gen, pending, id, req, trace, protocol);
            }
            Ok(Frame::Admin(id, cmd)) => {
                let data = admin_payload(&ctx.handle, cmd);
                proto::encode_admin_response_into(scratch, id, &data);
                push_json_frame(outbuf, scratch.as_bytes());
            }
            Ok(Frame::Feedback(id, rec)) => {
                // Answered inline once the record is crash-durable in the
                // WAL. The fsync runs on the shard thread by design:
                // feedback acks promise durability, and the append-latency
                // histogram (`serve.feedback.append`) keeps the cost honest.
                let result = ctx.handle.feedback(&rec);
                proto::encode_feedback_response_into(scratch, id, &result);
                push_json_frame(outbuf, scratch.as_bytes());
            }
            Err(msg) => {
                // Garbage JSON inside a well-formed frame: typed reply under
                // id 0, connection stays up — framing is still in sync.
                ls_obs::counter("serve.tcp.bad_frames").incr();
                proto::encode_response_into(scratch, 0, &Err(ServeError::BadRequest(msg)));
                push_json_frame(outbuf, scratch.as_bytes());
            }
        },
        Protocol::Binary => match proto::decode_binary_frame(payload) {
            Ok(Frame::Rank(id, req, trace)) => {
                submit_rank(ctx, slot, *gen, pending, id, req, trace, protocol);
            }
            Ok(Frame::Admin(id, cmd)) => {
                let data = admin_payload(&ctx.handle, cmd);
                outbuf.extend_from_slice(&proto::encode_binary_admin_response(id, &data));
            }
            Ok(Frame::Feedback(id, rec)) => {
                let result = ctx.handle.feedback(&rec);
                outbuf.extend_from_slice(&proto::encode_binary_feedback_response(id, &result));
            }
            Err(fe) => {
                // Same containment as JSON garbage: the framing layer is
                // intact, so answer typed and keep the connection.
                ls_obs::counter("serve.tcp.bad_frames").incr();
                let err = ServeError::BadRequest(fe.to_string());
                outbuf.extend_from_slice(&proto::encode_binary_response(0, &Err(err)));
            }
        },
    }
    Ok(())
}

/// Hand a rank request to the worker pool without blocking the shard.
#[allow(clippy::too_many_arguments)]
fn submit_rank(
    ctx: &ShardCtx,
    slot: usize,
    gen: u32,
    pending: &mut u32,
    id: u64,
    req: crate::server::RankRequest,
    trace: Option<ls_obs::TraceContext>,
    protocol: Protocol,
) {
    // Adopt the client's wire trace for the submission path so admission
    // spans and stage samples stitch into the client's trace.
    let _wire = trace.as_ref().map(ls_obs::TraceContext::attach);
    let _span = ls_obs::enabled().then(|| ls_obs::span("serve.tcp.request"));
    *pending += 1;
    let completion = Completion {
        mailbox: ctx.mailbox.clone(),
        token: slot as u64,
        gen,
        id,
        protocol,
        trace_id: trace.as_ref().map_or(0, |c| c.trace_id),
    };
    ctx.handle
        .rank_async(req, move |result| deliver(completion, result));
}

/// Completion callback: encode on whichever thread finished the job, then
/// route the bytes to the owning shard. Runs inline on the shard thread for
/// cache hits and admission rejections, on a worker thread otherwise.
fn deliver(c: Completion, result: Result<crate::server::RankResponse, ServeError>) {
    let t0 = ls_obs::enabled().then(Instant::now);
    let bytes = match c.protocol {
        Protocol::Json => {
            let payload = proto::encode_response(c.id, &result);
            let mut framed = Vec::with_capacity(payload.len() + 4);
            push_json_frame(&mut framed, &payload);
            framed
        }
        Protocol::Binary => proto::encode_binary_response(c.id, &result),
    };
    if let Some(t0) = t0 {
        // The serialize stage runs after the response object exists, so it
        // lands in the histogram only — the breakdown inside the frame
        // cannot include it.
        crate::server::stage_hists()
            .serialize
            .record_traced(t0.elapsed().as_secs_f64(), c.trace_id);
    }
    c.mailbox.push(Inbound::Done {
        token: c.token,
        gen: c.gen,
        bytes,
    });
}

fn push_json_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Answer one admin query from live server state.
pub(crate) fn admin_payload(handle: &ServeHandle, cmd: AdminCommand) -> String {
    ls_obs::counter("serve.tcp.admin_frames").incr();
    match cmd {
        AdminCommand::Metrics => ls_obs::metrics_json(),
        AdminCommand::State => handle.state_json(),
        AdminCommand::Traces => handle.traces_json(),
        AdminCommand::Recorder => ls_obs::recorder::dump_json(),
    }
}

/// Opportunistic flush, backpressure bookkeeping, and close decisions —
/// runs after every piece of work on a connection.
fn after_io(conn: &mut Conn, ctx: &ShardCtx) -> Result<(), Close> {
    if conn.buffered() > 0 {
        flush_some(conn)?;
    }
    let buffered = conn.buffered();
    if buffered > ctx.high_water {
        conn.paused = true;
    } else if conn.paused && buffered <= ctx.low_water {
        conn.paused = false;
    }
    if conn.read_closed {
        if conn.inbuf.len() > conn.in_off {
            // EOF with a partial frame buffered — the peer vanished
            // mid-frame. Same poison the blocking server applied.
            return Err(Close::Torn);
        }
        if conn.pending == 0 && buffered == 0 {
            return Err(Close::Clean);
        }
        // Half-closed: finish in-flight responses, then close.
    }
    Ok(())
}

/// Write as much of `outbuf` as the socket accepts right now.
fn flush_some(conn: &mut Conn) -> Result<(), Close> {
    while conn.out_off < conn.outbuf.len() {
        match conn.wr.write(&conn.outbuf[conn.out_off..]) {
            Ok(0) => return Err(Close::Torn),
            Ok(n) => conn.out_off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(Close::Torn),
        }
    }
    if conn.out_off == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_off = 0;
    } else if conn.out_off >= 256 * 1024 {
        conn.outbuf.drain(..conn.out_off);
        conn.out_off = 0;
    }
    Ok(())
}
