//! obsctl — live introspection client for a running ls-serve TCP server.
//!
//! Speaks the admin frames of `ls_serve::proto` over the same port as the
//! ranking protocol, so any serving process is inspectable with no extra
//! listener:
//!
//! ```text
//! obsctl <host:port> metrics    # metrics snapshot, with histogram exemplars
//! obsctl <host:port> state     # queue / pool / cache / breaker state
//! obsctl <host:port> traces    # in-flight traced requests + stage progress
//! obsctl <host:port> recorder  # flight-recorder ring contents
//! ```
//!
//! Output is the server's JSON, pretty-printed; `--raw` prints it compact
//! (one line, suitable for piping into other tooling). `--binary` carries
//! the admin frames over the negotiated binary protocol instead of JSON —
//! same answers, and a live check that a binary connection serves admin
//! introspection too (falls back to JSON against a legacy server).

use ls_obs::Json;
use ls_serve::{AdminCommand, Protocol, RetryPolicy, TcpRankClient};
use std::fmt::Write as _;

fn usage() -> ! {
    eprintln!("usage: obsctl <host:port> <metrics|state|traces|recorder> [--raw] [--binary]");
    std::process::exit(2);
}

/// Compact JSON emit (BTreeMap keys give deterministic field order).
fn emit(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => emit_str(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_str(out, k);
                out.push(':');
                emit(out, item);
            }
            out.push('}');
        }
    }
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Pretty emit: objects and arrays of objects go multi-line, scalar arrays
/// stay inline so histograms remain readable.
fn emit_pretty(out: &mut String, v: &Json, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Arr(items)
            if items
                .iter()
                .any(|i| matches!(i, Json::Obj(_) | Json::Arr(_))) =>
        {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                emit_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                emit_str(out, k);
                out.push_str(": ");
                emit_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => emit(out, other),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let raw = argv.iter().any(|a| a == "--raw");
    let binary = argv.iter().any(|a| a == "--binary");
    let pos: Vec<&String> = argv.iter().filter(|a| !a.starts_with("--")).collect();
    let (addr, kw) = match pos.as_slice() {
        [addr, kw] => (addr.as_str(), kw.as_str()),
        _ => usage(),
    };
    let Some(cmd) = AdminCommand::from_keyword(kw) else {
        eprintln!("unknown command {kw:?}");
        usage();
    };
    let protocol = if binary {
        Protocol::Binary
    } else {
        Protocol::Json
    };
    let mut client = match TcpRankClient::connect_opts(addr, RetryPolicy::none(), protocol) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obsctl: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.admin(cmd) {
        Ok(doc) => {
            let mut out = String::new();
            if raw {
                emit(&mut out, &doc);
            } else {
                emit_pretty(&mut out, &doc, 0);
            }
            println!("{out}");
        }
        Err(e) => {
            eprintln!("obsctl: {kw}: {e}");
            std::process::exit(1);
        }
    }
}
