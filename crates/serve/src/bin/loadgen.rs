//! serve-loadgen — closed-loop load generator for the ls-serve subsystem.
//!
//! Builds a synthetic movie database, trains nothing (a freshly initialized
//! small-ablation model is representative for *throughput*: inference cost
//! does not depend on the weight values), persists the model, loads it back
//! through the serving path, and drives it with closed-loop clients.
//!
//! Reported per configuration: requests served, shed counts, throughput
//! (req/s and facts/s) and exact p50/p99/p99.9/max latency from the full
//! sample set.
//!
//! ```text
//! serve-loadgen [--workers 1,2,4] [--clients 4] [--requests 200]
//!               [--queue 256] [--batch 64] [--cache 1024] [--cache-off]
//!               [--lineage 12] [--queries 24] [--serial] [--tcp]
//!               [--seed 7] [--max-len 64] [--fault] [--fault-seed 42]
//!               [--trace-sample N] [--assert-overhead PCT]
//! ```
//!
//! `--serial` adds a single-threaded `rank_lineage` baseline pass over the
//! same request stream; `--tcp` routes one configuration through the TCP
//! front-end to include protocol cost; `--fault` adds a chaos configuration:
//! a seeded fault plan injects scoring errors and panics while the circuit
//! breaker degrades to the uniform fallback, reporting degraded/failed
//! counts, degraded-mode throughput, and breaker recovery latency.
//!
//! `--feedback` adds an online-learning configuration: the server runs with
//! the feedback WAL + trainer enabled while a dedicated writer streams
//! feedback records alongside the rank closed loop, reporting rank latency
//! with training active, feedback append p50/p99, and how far the trainer
//! got (records trained, snapshots published + hot-swapped).
//!
//! `--trace-sample N` attaches a fresh `TraceContext` to every request, and
//! after each traced pass prints (a) the per-stage attribution of the p99
//! tail cohort ("p99 is 78% queue wait") and (b) N full stage-breakdown
//! samples. `--assert-overhead PCT` runs the warm-cache pass twice — tracing
//! off, then tracing on — and exits nonzero if the traced pass loses more
//! than PCT percent throughput. `--listen HOST:PORT` keeps a warm TCP
//! server alive after the runs so `obsctl` can introspect a live process.
//!
//! ## Connection sweep (`--connections`)
//!
//! `--connections 1000,5000,10000` drives the event-loop front-end with N
//! concurrent connections from a single nonblocking client loop (one fd per
//! connection, multiplexed over the same `Poller` the server uses), per
//! protocol from `--protocol json|binary|both`. The sweep *verifies* every
//! response: a warmup pass captures the server's answer for each distinct
//! request, and every sweep response must match it bit-for-bit (f64 score
//! bits and ranking) under the id it was issued with — one mixed, dropped,
//! or corrupted response fails the process. Typed `Overloaded` answers
//! count as shed, not drops: graceful overload is the contract, silence is
//! not. `--open-loop RPS` switches arrivals from closed-loop (one in flight
//! per connection) to a paced open loop that issues globally at the target
//! rate regardless of completions, pipelining onto connections round-robin.
//! `--connect HOST:PORT` points the sweep at an already-running
//! `--listen` process (same `--seed`/`--queries`/`--lineage` so the fact
//! ids resolve), splitting client and server across processes when one
//! process's fd limit cannot hold both sides of 10k sockets. The process
//! raises its own `RLIMIT_NOFILE` soft limit to the hard limit at sweep
//! start. `--sweep-requests N` overrides the per-configuration request
//! count (default: enough to cycle every connection at least four times).

use ls_core::{
    save_model, FeedbackRecord, LearnShapleyModel, OnlineConfig, OnlineTrainer, Tokenizer,
    UniformFallback,
};
use ls_fault::{FaultKind, FaultPlan, FaultRule, FaultSpec};
use ls_nn::EncoderConfig;
use ls_relational::{ColType, Database, FactId, OutputTuple, TableSchema, Value};
use ls_serve::{
    proto, Event, Interest, ModelBundle, OnlineOptions, Poller, Protocol, RankRequest,
    RankResponse, ServeConfig, ServeError, Server, StageBreakdown, TcpRankClient, TcpServer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    workers: Vec<usize>,
    clients: usize,
    requests: usize,
    queue: usize,
    batch: usize,
    cache: usize,
    lineage: usize,
    queries: usize,
    max_len: usize,
    seed: u64,
    serial: bool,
    tcp: bool,
    fault: bool,
    fault_seed: u64,
    feedback: bool,
    trace_sample: usize,
    assert_overhead: Option<f64>,
    listen: Option<String>,
    connections: Vec<usize>,
    protocols: Vec<Protocol>,
    open_loop: Option<f64>,
    sweep_requests: Option<usize>,
    connect: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![1, 2, 4],
            clients: 4,
            requests: 200,
            queue: 256,
            batch: 64,
            cache: 1024,
            lineage: 12,
            queries: 24,
            max_len: 64,
            seed: 7,
            serial: false,
            tcp: false,
            fault: false,
            fault_seed: 42,
            feedback: false,
            trace_sample: 0,
            assert_overhead: None,
            listen: None,
            connections: Vec::new(),
            protocols: vec![Protocol::Json, Protocol::Binary],
            open_loop: None,
            sweep_requests: None,
            connect: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = take()
                    .split(',')
                    .map(|w| w.parse().expect("worker count"))
                    .collect();
            }
            "--clients" => args.clients = take().parse().expect("client count"),
            "--requests" => args.requests = take().parse().expect("request count"),
            "--queue" => args.queue = take().parse().expect("queue depth"),
            "--batch" => args.batch = take().parse().expect("batch items"),
            "--cache" => args.cache = take().parse().expect("cache capacity"),
            "--cache-off" => args.cache = 0,
            "--lineage" => args.lineage = take().parse().expect("lineage size"),
            "--queries" => args.queries = take().parse().expect("query count"),
            "--max-len" => args.max_len = take().parse().expect("max len"),
            "--seed" => args.seed = take().parse().expect("seed"),
            "--serial" => args.serial = true,
            "--tcp" => args.tcp = true,
            "--fault" => args.fault = true,
            "--fault-seed" => args.fault_seed = take().parse().expect("fault seed"),
            "--feedback" => args.feedback = true,
            "--trace-sample" => args.trace_sample = take().parse().expect("trace sample count"),
            "--assert-overhead" => {
                args.assert_overhead = Some(take().parse().expect("overhead percent"));
            }
            "--listen" => args.listen = Some(take()),
            "--connections" => {
                args.connections = take()
                    .split(',')
                    .map(|c| c.parse().expect("connection count"))
                    .collect();
            }
            "--protocol" => {
                args.protocols = match take().as_str() {
                    "json" => vec![Protocol::Json],
                    "binary" => vec![Protocol::Binary],
                    "both" => vec![Protocol::Json, Protocol::Binary],
                    other => panic!("unknown protocol {other} (json|binary|both)"),
                };
            }
            "--open-loop" => args.open_loop = Some(take().parse().expect("open-loop rate")),
            "--sweep-requests" => {
                args.sweep_requests = Some(take().parse().expect("sweep request count"));
            }
            "--connect" => args.connect = Some(take()),
            "--help" | "-h" => {
                println!(
                    "serve-loadgen [--workers 1,2,4] [--clients N] [--requests N] \
                     [--queue N] [--batch N] [--cache N | --cache-off] [--lineage N] \
                     [--queries N] [--max-len N] [--seed N] [--serial] [--tcp] \
                     [--fault] [--fault-seed N] [--feedback] [--trace-sample N] \
                     [--assert-overhead PCT] [--listen HOST:PORT] \
                     [--connections N,N,...] [--protocol json|binary|both] \
                     [--open-loop RPS] [--sweep-requests N] [--connect HOST:PORT]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A synthetic movie database big enough that lineages reference varied rows.
fn build_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[
            ("title", ColType::Str),
            ("year", ColType::Int),
            ("rating", ColType::Int),
        ],
    ));
    db.create_table(TableSchema::new(
        "directors",
        &[("name", ColType::Str), ("movie", ColType::Str)],
    ));
    let words = [
        "night", "garden", "iron", "silent", "echo", "crimson", "paper", "glass", "winter",
        "harbor", "atlas", "ember", "valley", "signal", "orbit", "meadow",
    ];
    let names = [
        "Avery", "Blake", "Casey", "Devon", "Ellis", "Finley", "Gray", "Harper", "Indira", "Jules",
        "Kiran", "Lane",
    ];
    for i in 0..400 {
        let title = format!(
            "{} {} {}",
            words[rng.gen_range(0..words.len())],
            words[rng.gen_range(0..words.len())],
            i
        );
        let year = 1970 + rng.gen_range(0..55) as i64;
        let rating = rng.gen_range(1..11) as i64;
        db.insert(
            "movies",
            vec![
                Value::Str(title.clone()),
                Value::Int(year),
                Value::Int(rating),
            ],
        );
        if i % 4 == 0 {
            db.insert(
                "directors",
                vec![
                    Value::Str(names[rng.gen_range(0..names.len())].to_string()),
                    Value::Str(title),
                ],
            );
        }
    }
    db
}

/// The request stream: distinct (query, tuple, lineage) triples cycled by
/// the closed-loop clients. Cycling is what makes the warm pass hit the
/// cache.
fn build_requests(db: &Database, args: &Args, rng: &mut StdRng) -> Vec<RankRequest> {
    let fact_count = db.fact_count() as u32;
    (0..args.queries)
        .map(|qi| {
            let year = 1975 + (qi % 40) as i64;
            let query_sql = format!(
                "SELECT title, rating FROM movies WHERE year >= {year} AND rating > {}",
                qi % 9
            );
            let tuple = OutputTuple {
                values: vec![
                    Value::Str(format!("title {qi}")),
                    Value::Int((qi % 10) as i64),
                ],
                derivations: Vec::new(),
            };
            // Distinct facts: duplicates would collapse in FactScores and
            // shrink the ranking.
            let mut lineage = Vec::with_capacity(args.lineage);
            while lineage.len() < args.lineage.min(fact_count as usize) {
                let f = FactId(rng.gen_range(0..fact_count));
                if !lineage.contains(&f) {
                    lineage.push(f);
                }
            }
            RankRequest {
                query_sql,
                tuple,
                lineage,
                deadline: None,
                slo: None,
            }
        })
        .collect()
}

#[derive(Debug, Default)]
struct RunStats {
    served: usize,
    shed: usize,
    cached: usize,
    /// Responses answered by the fallback scorer with the breaker open.
    degraded: usize,
    /// Requests that ended in a typed Internal error (injected faults).
    failed: usize,
    latencies: Vec<Duration>,
    wall: Duration,
    facts: usize,
    /// Per-stage breakdowns of traced (non-cache-hit) responses.
    stages: Vec<StageBreakdown>,
}

impl RunStats {
    fn throughput(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn report(&mut self, label: &str) {
        self.latencies.sort();
        let pct = |p: f64| -> Duration {
            if self.latencies.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
            self.latencies[idx]
        };
        let secs = self.wall.as_secs_f64().max(1e-9);
        let chaos = if self.degraded > 0 || self.failed > 0 {
            format!("  degraded {:>5}  failed {:>4}", self.degraded, self.failed)
        } else {
            String::new()
        };
        println!(
            "{label:<28} served {:>6}  shed {:>4}  cached {:>6}  {:>9.1} req/s  {:>10.0} facts/s  p50 {:>9.3?}  p99 {:>9.3?}  p99.9 {:>9.3?}  max {:>9.3?}{chaos}",
            self.served,
            self.shed,
            self.cached,
            self.served as f64 / secs,
            self.facts as f64 / secs,
            pct(0.50),
            pct(0.99),
            pct(0.999),
            self.latencies.last().copied().unwrap_or(Duration::ZERO),
        );
    }

    /// Attribute the p99 tail to its dominant stage and dump `sample` full
    /// breakdowns — the "p99 is 78% queue wait" line the tracing work exists
    /// to produce.
    fn report_stages(&mut self, sample: usize) {
        if self.stages.is_empty() {
            return;
        }
        self.stages.sort_by_key(|b| b.total_us);
        let p99_idx = ((self.stages.len() as f64 - 1.0) * 0.99).round() as usize;
        let cohort = &self.stages[p99_idx..];
        let sums = cohort.iter().fold([0u64; 6], |mut acc, b| {
            for (slot, v) in acc.iter_mut().zip([
                b.probe_us, b.queue_us, b.batch_us, b.score_us, b.other_us, b.total_us,
            ]) {
                *slot += v;
            }
            acc
        });
        let total = sums[5].max(1);
        let named = [
            ("probe", sums[0]),
            ("queue wait", sums[1]),
            ("batch assembly", sums[2]),
            ("score", sums[3]),
            ("other", sums[4]),
        ];
        let (dominant, dominant_us) = named
            .iter()
            .max_by_key(|(_, us)| *us)
            .copied()
            .unwrap_or(("other", 0));
        let pct_of = |us: u64| 100.0 * us as f64 / total as f64;
        println!(
            "  p99 tail ({} traced requests): p99 is {:.0}% {dominant}  \
             [probe {:.0}%  queue {:.0}%  batch {:.0}%  score {:.0}%  other {:.0}%]",
            cohort.len(),
            pct_of(dominant_us),
            pct_of(sums[0]),
            pct_of(sums[1]),
            pct_of(sums[2]),
            pct_of(sums[3]),
            pct_of(sums[4]),
        );
        // Full breakdowns, slowest first.
        for b in self.stages.iter().rev().take(sample) {
            println!(
                "    trace sample: total {:>7}us = probe {:>5}us + queue {:>6}us + \
                 batch {:>5}us + score {:>6}us + other {:>5}us",
                b.total_us, b.probe_us, b.queue_us, b.batch_us, b.score_us, b.other_us
            );
        }
    }

    fn merge(&mut self, local: RunStats) {
        self.served += local.served;
        self.shed += local.shed;
        self.cached += local.cached;
        self.degraded += local.degraded;
        self.failed += local.failed;
        self.facts += local.facts;
        self.latencies.extend(local.latencies);
        self.stages.extend(local.stages);
    }
}

/// Closed-loop client pass: `clients` threads pull the next request index
/// from a shared counter until `total` requests have been issued.
fn drive(
    handle: &ls_serve::ServeHandle,
    requests: &[RankRequest],
    clients: usize,
    total: usize,
    traced: bool,
) -> RunStats {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut local = RunStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let req = requests[i % requests.len()].clone();
                        let facts = req.lineage.len();
                        // A fresh root per request: the guard keeps the
                        // context attached for the duration of the call.
                        let _trace = traced.then(|| ls_obs::TraceContext::root().attach());
                        let t0 = Instant::now();
                        match handle.rank(req) {
                            Ok(resp) => {
                                local.served += 1;
                                local.facts += facts;
                                local.latencies.push(t0.elapsed());
                                if resp.cached {
                                    local.cached += 1;
                                }
                                if resp.degraded {
                                    local.degraded += 1;
                                }
                                if let Some(b) = resp.stages {
                                    local.stages.push(b);
                                }
                            }
                            Err(ServeError::Overloaded | ServeError::DeadlineExceeded) => {
                                local.shed += 1;
                            }
                            Err(ServeError::Internal(_)) => local.failed += 1,
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    local
                })
            })
            .collect();
        let mut merged = RunStats::default();
        for h in handles {
            merged.merge(h.join().expect("client thread"));
        }
        merged
    });
    let mut stats = stats;
    stats.wall = start.elapsed();
    stats
}

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let db = build_db(&mut rng);
    let requests = build_requests(&db, &args, &mut rng);

    // Client-only mode: drive the sweep against an already-running
    // `--listen` process. The request stream is rebuilt deterministically
    // from the same seed, so fact ids resolve on the remote side; no local
    // model or server is needed.
    if let Some(addr) = args.connect.clone() {
        let conns = if args.connections.is_empty() {
            vec![args.clients]
        } else {
            args.connections.clone()
        };
        let ok = run_sweep(&args, &requests, &addr, &conns);
        ls_obs::report();
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Tokenizer over the request corpus plus rendered facts, mirroring how
    // the pipeline builds vocabulary from training text.
    let mut corpus: Vec<String> = requests.iter().map(|r| r.query_sql.clone()).collect();
    for f in 0..db.fact_count() {
        if let Some((table, row)) = db.fact(FactId(f as u32)) {
            corpus.push(format!("{table} {}", row.tuple_string()));
        }
    }
    let tokenizer = Tokenizer::build(corpus.iter().map(String::as_str), 2000);
    let mut model = LearnShapleyModel::new(EncoderConfig::small_ablation(
        tokenizer.vocab_size(),
        args.max_len,
    ));

    // Persist and reload through the serving path, so loadgen also exercises
    // the snapshot format end to end.
    let dir = std::env::temp_dir().join(format!("ls-serve-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let snapshot = dir.join("model.lsmd");
    save_model(&mut model, &tokenizer, &snapshot).expect("save model");
    drop(model);
    let bundle =
        Arc::new(ModelBundle::load(&snapshot, db, args.max_len).expect("load model snapshot"));

    println!(
        "serve-loadgen: {} queries x lineage {} ({} facts/request), {} clients, {} requests/run",
        args.queries, args.lineage, args.lineage, args.clients, args.requests
    );

    if args.serial {
        // Single-threaded baseline through the plain library path.
        let start = Instant::now();
        let mut stats = RunStats::default();
        for i in 0..args.requests {
            let req = &requests[i % requests.len()];
            let t0 = Instant::now();
            let ranking = ls_core::rank_lineage(
                &bundle.model,
                &bundle.tokenizer,
                &bundle.db,
                &req.query_sql,
                &req.tuple,
                &req.lineage,
                bundle.max_len,
            );
            assert_eq!(ranking.len(), req.lineage.len());
            stats.served += 1;
            stats.facts += req.lineage.len();
            stats.latencies.push(t0.elapsed());
        }
        stats.wall = start.elapsed();
        stats.report("serial rank_lineage");
    }

    for &workers in &args.workers {
        let cfg = ServeConfig {
            workers,
            queue_depth: args.queue,
            max_batch_items: args.batch,
            batch_deadline: Duration::from_micros(500),
            cache_capacity: args.cache,
            default_deadline: None,
            ..Default::default()
        };
        let server = Server::start(bundle.clone(), cfg);
        let handle = server.handle();
        let traced = args.trace_sample > 0;
        let mut cold = drive(&handle, &requests, args.clients, args.requests, traced);
        cold.report(&format!("serve w={workers} cold"));
        cold.report_stages(args.trace_sample);
        if args.cache > 0 {
            let mut warm = drive(&handle, &requests, args.clients, args.requests, traced);
            warm.report(&format!("serve w={workers} warm"));
            warm.report_stages(args.trace_sample);
        }
        server.shutdown();
    }

    if let Some(bound) = args.assert_overhead {
        run_overhead(&args, &bundle, &requests, bound);
    }

    if args.tcp {
        let workers = *args.workers.last().unwrap_or(&2);
        let server = Server::start(
            bundle.clone(),
            ServeConfig {
                workers,
                queue_depth: args.queue,
                max_batch_items: args.batch,
                cache_capacity: args.cache,
                ..Default::default()
            },
        );
        let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind tcp");
        let addr = tcp.local_addr();
        let start = Instant::now();
        let next = AtomicUsize::new(0);
        let mut stats = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|_| {
                    let next = &next;
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut client = TcpRankClient::connect(addr).expect("connect");
                        let mut local = RunStats::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= args.requests {
                                break;
                            }
                            let req = &requests[i % requests.len()];
                            let t0 = Instant::now();
                            match client.rank(req) {
                                Ok(resp) => {
                                    local.served += 1;
                                    local.facts += req.lineage.len();
                                    local.latencies.push(t0.elapsed());
                                    if resp.cached {
                                        local.cached += 1;
                                    }
                                }
                                Err(ServeError::Overloaded | ServeError::DeadlineExceeded) => {
                                    local.shed += 1
                                }
                                Err(e) => panic!("tcp error: {e}"),
                            }
                        }
                        local
                    })
                })
                .collect();
            let mut merged = RunStats::default();
            for h in handles {
                merged.merge(h.join().expect("tcp client thread"));
            }
            merged
        });
        stats.wall = start.elapsed();
        stats.report(&format!("serve w={workers} tcp"));
        tcp.stop();
        server.shutdown();
    }

    if args.fault {
        run_fault(&args, &bundle, &requests);
    }

    if args.feedback {
        run_feedback(&args, &bundle, &requests);
    }

    let mut sweep_ok = true;
    if !args.connections.is_empty() {
        // In-process sweep: client and server share this fd table, so each
        // connection costs two descriptors — the rlimit raise below covers
        // both sides. For counts the local hard limit cannot hold, split
        // processes with `--listen` + `--connect`.
        let workers = *args.workers.last().unwrap_or(&2);
        let server = Server::start(
            bundle.clone(),
            ServeConfig {
                workers,
                queue_depth: args.queue,
                max_batch_items: args.batch,
                cache_capacity: args.cache.max(requests.len()),
                ..Default::default()
            },
        );
        let tcp = TcpServer::start(server.handle(), "127.0.0.1:0").expect("bind sweep server");
        let addr = tcp.local_addr().to_string();
        let conns = args.connections.clone();
        sweep_ok = run_sweep(&args, &requests, &addr, &conns);
        tcp.stop();
        server.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);

    if !sweep_ok {
        ls_obs::report();
        std::process::exit(1);
    }

    // Interactive mode: keep a warm server on `addr` after the runs so
    // `obsctl` (or any rank client) can poke at a live process.
    if let Some(addr) = &args.listen {
        let workers = *args.workers.last().unwrap_or(&2);
        let server = Server::start(
            bundle.clone(),
            ServeConfig {
                workers,
                queue_depth: args.queue,
                max_batch_items: args.batch,
                cache_capacity: args.cache,
                ..Default::default()
            },
        );
        let tcp = TcpServer::start(server.handle(), addr.as_str()).expect("bind listen addr");
        println!(
            "listening on {} (rank + admin frames; Ctrl-C to stop)",
            tcp.local_addr()
        );
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Flush the metric summary / JSONL sink (LS_OBS, LS_OBS_JSONL).
    ls_obs::report();
}

/// Tracing-overhead bound: drive the same warm-cache configuration with
/// tracing off and on, and fail the process if the traced pass loses more
/// than `bound` percent throughput. Each mode takes the best of three warm
/// passes so a scheduler hiccup cannot fail the bound on its own.
fn run_overhead(args: &Args, bundle: &Arc<ModelBundle>, requests: &[RankRequest], bound: f64) {
    let workers = *args.workers.last().unwrap_or(&2);
    let cfg = ServeConfig {
        workers,
        queue_depth: args.queue,
        max_batch_items: args.batch,
        batch_deadline: Duration::from_micros(500),
        cache_capacity: args.cache.max(1024),
        default_deadline: None,
        ..Default::default()
    };
    let server = Server::start(bundle.clone(), cfg);
    let handle = server.handle();
    // Fill the cache once, then measure.
    drive(&handle, requests, args.clients, args.requests, false);
    let best = |traced: bool| -> f64 {
        (0..3)
            .map(|_| drive(&handle, requests, args.clients, args.requests, traced).throughput())
            .fold(0.0f64, f64::max)
    };
    let base = best(false);
    let traced = best(true);
    server.shutdown();
    let overhead = 100.0 * (1.0 - traced / base.max(1e-9));
    println!(
        "tracing overhead (warm, w={workers}): off {base:.1} req/s, on {traced:.1} req/s, \
         overhead {overhead:.2}% (bound {bound}%)"
    );
    if overhead > bound {
        eprintln!("tracing overhead {overhead:.2}% exceeds bound {bound}%");
        std::process::exit(1);
    }
}

/// Chaos configuration: drive the server under a seeded fault plan that
/// injects scoring errors and panics, with the circuit breaker flipping to
/// the uniform fallback. Two measurements come out:
///
/// * **degraded throughput** — the closed-loop pass reports served /
///   degraded / failed counts and req/s exactly like the healthy runs, so
///   the cost of faults and fallback dispatch is directly comparable;
/// * **recovery latency** — a deterministic error burst trips the breaker,
///   then a single-threaded probe loop measures wall time from the first
///   degraded response until the model path answers at full fidelity again.
fn run_fault(args: &Args, bundle: &Arc<ModelBundle>, requests: &[RankRequest]) {
    let workers = *args.workers.last().unwrap_or(&2);
    let cooldown = Duration::from_millis(50);
    let cfg = ServeConfig {
        workers,
        queue_depth: args.queue,
        max_batch_items: args.batch,
        cache_capacity: 0, // every request must exercise the scoring path
        breaker_failures: 3,
        breaker_cooldown: cooldown,
        ..Default::default()
    };

    // Steady-state chaos: ~2% injected scoring errors, ~0.5% panics. The
    // schedule is fixed by --fault-seed, so a run is exactly replayable.
    let spec = FaultSpec::new()
        .rule(FaultRule::bernoulli(
            "serve.worker.score",
            FaultKind::Error,
            20,
        ))
        .rule(FaultRule::bernoulli(
            "serve.worker.score",
            FaultKind::Panic,
            5,
        ));
    let plan = Arc::new(FaultPlan::compile(args.fault_seed, &spec));
    let server = Server::start_with(
        bundle.clone(),
        cfg.clone(),
        plan.clone(),
        Some(Arc::new(UniformFallback)),
    );
    let handle = server.handle();
    let mut stats = drive(&handle, requests, args.clients, args.requests, false);
    stats.report(&format!("serve w={workers} fault"));
    println!(
        "  fault plan seed {}: {} faults fired during the closed loop",
        args.fault_seed,
        plan.fired()
    );
    server.shutdown();

    // Recovery latency: a deterministic burst of 3 consecutive scoring
    // errors opens the breaker; measure open -> first full-fidelity answer.
    let spec = FaultSpec::new().rule(FaultRule::at(
        "serve.worker.score",
        FaultKind::Error,
        &[0, 1, 2],
    ));
    let server = Server::start_with(
        bundle.clone(),
        cfg,
        Arc::new(FaultPlan::compile(args.fault_seed, &spec)),
        Some(Arc::new(UniformFallback)),
    );
    let handle = server.handle();
    let mut opened_at = None;
    let mut degraded_while_open = 0usize;
    let mut recovery = None;
    for i in 0..10_000 {
        let req = requests[i % requests.len()].clone();
        match handle.rank(req) {
            Ok(resp) if resp.degraded => {
                opened_at.get_or_insert_with(Instant::now);
                degraded_while_open += 1;
            }
            Ok(_) => {
                if let Some(at) = opened_at {
                    recovery = Some(at.elapsed());
                    break;
                }
            }
            Err(ServeError::Internal(_)) => {
                // The burst itself; the breaker opens after the third.
                opened_at.get_or_insert_with(Instant::now);
            }
            Err(e) => panic!("unexpected serve error: {e}"),
        }
    }
    match recovery {
        Some(d) => println!(
            "  breaker recovery: open -> full fidelity in {d:.3?} \
             ({degraded_while_open} degraded responses served while open, cooldown {cooldown:?})"
        ),
        None => println!("  breaker recovery: did not recover within the probe budget"),
    }
    server.shutdown();
}

/// Online-learning configuration: rank traffic and a feedback stream share
/// the server. One writer thread appends `requests` feedback records through
/// the WAL while the closed-loop clients rank; the trainer consumes, trains,
/// and hot-swaps published snapshots under that load. Reported: the rank
/// pass (so swap cost shows up in p50/p99 next to the healthy runs),
/// feedback append latency, and trainer progress.
fn run_feedback(args: &Args, bundle: &Arc<ModelBundle>, requests: &[RankRequest]) {
    let workers = *args.workers.last().unwrap_or(&2);
    let cfg = ServeConfig {
        workers,
        queue_depth: args.queue,
        max_batch_items: args.batch,
        batch_deadline: Duration::from_micros(500),
        cache_capacity: args.cache,
        default_deadline: None,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("ls-serve-loadgen-online-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = OnlineOptions {
        wal_dir: dir.join("wal"),
        snapshot_dir: dir.join("snapshots"),
        publish_every: 64,
        poll: Duration::from_millis(2),
    };
    let online_cfg = OnlineConfig {
        batch: 16,
        lr: 1e-3,
        max_len: args.max_len,
        seed: args.seed,
    };
    let trainer = OnlineTrainer::new(
        LearnShapleyModel::new(EncoderConfig::small_ablation(
            bundle.tokenizer.vocab_size(),
            args.max_len,
        )),
        bundle.tokenizer.clone(),
        online_cfg,
    );

    let server = Server::start(bundle.clone(), cfg);
    let online = server
        .enable_online(trainer, opts)
        .expect("enable online engine");
    let handle = server.handle();

    // Feedback writer: one record per rank request, derived from the same
    // request stream so trained text matches served text.
    let records: Vec<FeedbackRecord> = (0..args.requests)
        .map(|i| {
            let req = &requests[i % requests.len()];
            FeedbackRecord {
                query_sql: req.query_sql.clone(),
                tuple_fact: format!("tuple {i} | fact {}", req.lineage[i % req.lineage.len()].0),
                target: (i % 100) as f32 / 100.0,
            }
        })
        .collect();
    let (mut stats, mut append_lat) = std::thread::scope(|scope| {
        let writer = {
            let handle = handle.clone();
            let records = &records;
            scope.spawn(move || {
                let mut lat = Vec::with_capacity(records.len());
                for rec in records {
                    let t0 = Instant::now();
                    handle.feedback(rec).expect("feedback append");
                    lat.push(t0.elapsed());
                }
                lat
            })
        };
        let stats = drive(&handle, requests, args.clients, args.requests, false);
        (stats, writer.join().expect("feedback writer"))
    });
    stats.report(&format!("serve w={workers} +feedback"));

    append_lat.sort();
    let pct = |p: f64| append_lat[((append_lat.len() as f64 - 1.0) * p).round() as usize];
    println!(
        "  feedback stream: {} records appended  p50 {:>9.3?}  p99 {:>9.3?}  max {:>9.3?}",
        append_lat.len(),
        pct(0.50),
        pct(0.99),
        append_lat.last().copied().unwrap_or(Duration::ZERO),
    );

    // Give the trainer one publish interval to catch up, then report how far
    // it got; shutdown() checkpoints and joins it either way.
    let deadline = Instant::now() + Duration::from_secs(10);
    while online.published_generation() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "  online trainer: appended {}  trained {}  published generation {}  model generation {}",
        online.appended(),
        online.trained(),
        online.published_generation(),
        handle.model_generation(),
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Connection sweep: N concurrent connections from one nonblocking client
// loop, with bit-exact verification of every response.
// ---------------------------------------------------------------------------

/// Raise this process's `RLIMIT_NOFILE` soft limit to its hard limit and
/// return the resulting soft limit. 10k-connection sweeps need ~1 fd per
/// connection client-side (2 with an in-process server); the default soft
/// limit of 1024 would otherwise fail the sweep at accept/connect time.
fn raise_nofile_limit() -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                return lim.max;
            }
        }
        lim.cur
    }
}

/// The reference answer for one distinct request, captured during warmup:
/// score f64 bits (exact equality, NaN-safe) plus the ranking.
struct Expected {
    score_bits: Vec<u64>,
    ranking: Vec<FactId>,
}

/// One connection of the sweep client.
struct SweepConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    in_off: usize,
    outbuf: Vec<u8>,
    out_off: usize,
    /// id -> (request index, enqueue time) for every response still owed.
    inflight: HashMap<u64, (usize, Instant)>,
    registered: Interest,
    dead: bool,
}

impl SweepConn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: true,
            writable: self.out_off < self.outbuf.len(),
        }
    }
}

/// Tallies for one (protocol, connections) sweep configuration.
#[derive(Default)]
struct SweepStats {
    served: usize,
    shed: usize,
    mismatched: usize,
    unknown_ids: usize,
    conn_failures: usize,
    latencies: Vec<Duration>,
    bytes_out: u64,
    bytes_in: u64,
}

/// Run the full sweep matrix against `addr`; returns false if any
/// configuration dropped, mixed, or corrupted a response.
fn run_sweep(args: &Args, requests: &[RankRequest], addr: &str, conns: &[usize]) -> bool {
    let limit = raise_nofile_limit();
    let max_conns = conns.iter().copied().max().unwrap_or(0);
    println!(
        "connection sweep: {addr}  connections {conns:?}  protocols {:?}  \
         arrivals {}  fd soft limit {limit}",
        args.protocols
            .iter()
            .map(Protocol::to_string)
            .collect::<Vec<_>>(),
        match args.open_loop {
            Some(r) => format!("open-loop {r} req/s"),
            None => "closed-loop (1 in flight per connection)".to_string(),
        },
    );
    if (max_conns as u64) + 64 > limit {
        eprintln!(
            "sweep error: {max_conns} connections will not fit under fd limit {limit}; \
             raise ulimit -n or use --listen/--connect two-process mode"
        );
        return false;
    }

    let mut all_ok = true;
    for &protocol in &args.protocols {
        // Warmup on a plain blocking client: capture the reference answer
        // for every distinct request (and fill the server's cache so the
        // sweep measures the serving path, not first-touch scoring).
        let expected = match capture_expected(addr, protocol, requests) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("sweep warmup failed ({protocol}): {msg}");
                return false;
            }
        };
        for &n in conns {
            let total = args
                .sweep_requests
                .unwrap_or_else(|| args.requests.max(n * 4));
            match sweep_config(
                addr,
                protocol,
                n,
                total,
                args.open_loop,
                requests,
                &expected,
            ) {
                Ok((stats, wall)) => {
                    let ok = report_sweep(protocol, n, total, stats, wall);
                    all_ok &= ok;
                }
                Err(msg) => {
                    eprintln!("sweep {protocol} conns={n}: {msg}");
                    all_ok = false;
                }
            }
        }
    }
    all_ok
}

/// Blocking warmup pass: one answer per distinct request, with shed
/// responses retried (the reference must be a real answer).
fn capture_expected(
    addr: &str,
    protocol: Protocol,
    requests: &[RankRequest],
) -> Result<Vec<Expected>, String> {
    let mut client = TcpRankClient::connect_opts(addr, ls_serve::RetryPolicy::default(), protocol)
        .map_err(|e| format!("connect: {e}"))?;
    if client.protocol() != protocol {
        return Err(format!(
            "server negotiated {} where the sweep needs {protocol}",
            client.protocol()
        ));
    }
    requests
        .iter()
        .map(|req| {
            for _ in 0..50 {
                match client.rank(req) {
                    Ok(resp) => {
                        return Ok(Expected {
                            score_bits: resp.scores.iter().map(|s| s.to_bits()).collect(),
                            ranking: resp.ranking,
                        })
                    }
                    Err(ServeError::Overloaded | ServeError::DeadlineExceeded) => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(format!("warmup rank: {e}")),
                }
            }
            Err("warmup rank: shed 50 times in a row".to_string())
        })
        .collect()
}

/// Drive one (protocol, connections) configuration and verify every byte
/// that comes back.
#[allow(clippy::too_many_arguments)]
fn sweep_config(
    addr: &str,
    protocol: Protocol,
    n_conns: usize,
    total: usize,
    open_loop: Option<f64>,
    requests: &[RankRequest],
    expected: &[Expected],
) -> Result<(SweepStats, Duration), String> {
    let mut poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut conns: Vec<SweepConn> = Vec::with_capacity(n_conns);
    for i in 0..n_conns {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect #{i}: {e}"))?;
        if std::env::var("LS_NODELAY").map_or(true, |v| v != "0") {
            stream
                .set_nodelay(true)
                .map_err(|e| format!("nodelay: {e}"))?;
        }
        if protocol == Protocol::Binary {
            // Negotiate while still blocking; the loop below only ever sees
            // length-prefixed frames.
            let mut s = &stream;
            s.write_all(&proto::encode_hello(proto::BINARY_VERSION))
                .map_err(|e| format!("hello #{i}: {e}"))?;
            let mut ack = [0u8; proto::HELLO_LEN];
            s.read_exact(&mut ack)
                .map_err(|e| format!("hello ack #{i}: {e}"))?;
            let v = proto::decode_hello(&ack).map_err(|e| format!("hello ack #{i}: {e}"))?;
            if v != proto::BINARY_VERSION {
                return Err(format!("hello ack #{i}: unsupported version {v}"));
            }
        }
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        poller
            .register(
                std::os::unix::io::AsRawFd::as_raw_fd(&stream),
                i as u64,
                Interest::READ,
            )
            .map_err(|e| format!("register: {e}"))?;
        conns.push(SweepConn {
            stream,
            inbuf: Vec::new(),
            in_off: 0,
            outbuf: Vec::new(),
            out_off: 0,
            inflight: HashMap::new(),
            registered: Interest::READ,
            dead: false,
        });
    }

    let mut stats = SweepStats::default();
    let mut issued = 0usize;
    let mut finished = 0usize; // responses accounted for (served + shed)
    let mut next_id = 1u64;
    let mut rr = 0usize;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(180);

    // Prime the closed loop: one request in flight per connection.
    if open_loop.is_none() {
        for conn in conns.iter_mut() {
            if issued >= total {
                break;
            }
            enqueue(conn, protocol, requests, issued, next_id);
            issued += 1;
            next_id += 1;
        }
    }

    let mut events: Vec<Event> = Vec::new();
    while finished + stats.conn_failures.min(total) < total {
        if Instant::now() > deadline {
            let dropped = total - finished;
            return Err(format!(
                "timed out after {:?}: {dropped} responses never arrived \
                 (served {}, shed {})",
                start.elapsed(),
                stats.served,
                stats.shed
            ));
        }
        // Open-loop pacing: issue every request whose arrival time has come,
        // regardless of completions (pipelining round-robin across conns).
        if let Some(rate) = open_loop {
            let due = ((start.elapsed().as_secs_f64() * rate) as usize).min(total);
            while issued < due {
                let i = rr % n_conns;
                rr += 1;
                if conns[i].dead {
                    if conns.iter().all(|c| c.dead) {
                        return Err("every connection died".to_string());
                    }
                    continue;
                }
                enqueue(&mut conns[i], protocol, requests, issued, next_id);
                issued += 1;
                next_id += 1;
            }
        }
        // Flush what we queued, reconcile interest, then wait.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            if let Err(msg) = flush_conn(conn, &mut stats) {
                kill_conn(conn, &mut poller, &mut stats, &msg);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.registered {
                let fd = std::os::unix::io::AsRawFd::as_raw_fd(&conn.stream);
                if poller.modify(fd, i as u64, want).is_ok() {
                    conn.registered = want;
                }
            }
        }
        let timeout = if open_loop.is_some() {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(100)
        };
        poller
            .wait(&mut events, Some(timeout))
            .map_err(|e| format!("poll wait: {e}"))?;
        for &ev in &events {
            let i = ev.token as usize;
            if i >= conns.len() || conns[i].dead {
                continue;
            }
            if ev.readable {
                if let Err(msg) =
                    read_conn(&mut conns[i], protocol, expected, &mut stats, &mut finished)
                {
                    kill_conn(&mut conns[i], &mut poller, &mut stats, &msg);
                    continue;
                }
                // Closed loop: a completed response frees the slot.
                if open_loop.is_none() {
                    while conns[i].inflight.is_empty() && issued < total {
                        enqueue(&mut conns[i], protocol, requests, issued, next_id);
                        issued += 1;
                        next_id += 1;
                    }
                }
            }
            if ev.writable {
                if let Err(msg) = flush_conn(&mut conns[i], &mut stats) {
                    kill_conn(&mut conns[i], &mut poller, &mut stats, &msg);
                    continue;
                }
            }
        }
        // Closed loop with dead connections: reassign their quota so the
        // run still terminates (the failures are already counted).
        if open_loop.is_none() {
            for conn in conns.iter_mut() {
                if conn.dead || issued >= total {
                    continue;
                }
                if conn.inflight.is_empty() && conn.outbuf.len() == conn.out_off {
                    enqueue(conn, protocol, requests, issued, next_id);
                    issued += 1;
                    next_id += 1;
                }
            }
            if conns.iter().all(|c| c.dead) {
                return Err("every connection died".to_string());
            }
        }
    }
    Ok((stats, start.elapsed()))
}

/// Encode request `issued` under `id` into the connection's write buffer.
fn enqueue(
    conn: &mut SweepConn,
    protocol: Protocol,
    requests: &[RankRequest],
    issued: usize,
    id: u64,
) {
    let req_idx = issued % requests.len();
    match protocol {
        Protocol::Json => {
            let payload = proto::encode_request(id, &requests[req_idx], None);
            conn.outbuf
                .extend_from_slice(&(payload.len() as u32).to_le_bytes());
            conn.outbuf.extend_from_slice(&payload);
        }
        Protocol::Binary => {
            conn.outbuf.extend_from_slice(&proto::encode_binary_request(
                id,
                &requests[req_idx],
                None,
            ));
        }
    }
    conn.inflight.insert(id, (req_idx, Instant::now()));
}

/// Write as much buffered data as the socket accepts.
fn flush_conn(conn: &mut SweepConn, stats: &mut SweepStats) -> Result<(), String> {
    while conn.out_off < conn.outbuf.len() {
        match (&conn.stream).write(&conn.outbuf[conn.out_off..]) {
            Ok(0) => return Err("write: connection closed".to_string()),
            Ok(n) => {
                conn.out_off += n;
                stats.bytes_out += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("write: {e}")),
        }
    }
    if conn.out_off == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_off = 0;
    }
    Ok(())
}

/// Drain readable bytes and verify every complete response frame.
fn read_conn(
    conn: &mut SweepConn,
    protocol: Protocol,
    expected: &[Expected],
    stats: &mut SweepStats,
    finished: &mut usize,
) -> Result<(), String> {
    loop {
        let filled = conn.inbuf.len();
        conn.inbuf.resize(filled + 64 * 1024, 0);
        match (&conn.stream).read(&mut conn.inbuf[filled..]) {
            Ok(0) => {
                conn.inbuf.truncate(filled);
                return Err("read: server closed connection".to_string());
            }
            Ok(n) => {
                conn.inbuf.truncate(filled + n);
                stats.bytes_in += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conn.inbuf.truncate(filled);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                conn.inbuf.truncate(filled);
            }
            Err(e) => {
                conn.inbuf.truncate(filled);
                return Err(format!("read: {e}"));
            }
        }
    }
    loop {
        let avail = &conn.inbuf[conn.in_off..];
        if avail.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("sized")) as usize;
        if avail.len() < 4 + len {
            break;
        }
        let payload = &avail[4..4 + len];
        let (id, result) = match protocol {
            Protocol::Json => {
                proto::decode_response(payload).map_err(|m| format!("decode: {m}"))?
            }
            Protocol::Binary => {
                proto::decode_binary_response(payload).map_err(|e| format!("decode: {e}"))?
            }
        };
        match conn.inflight.remove(&id) {
            None => stats.unknown_ids += 1, // a response we never asked for
            Some((req_idx, t0)) => {
                *finished += 1;
                match result {
                    Ok(resp) => {
                        stats.latencies.push(t0.elapsed());
                        if response_matches(&resp, &expected[req_idx]) {
                            stats.served += 1;
                        } else {
                            stats.mismatched += 1;
                        }
                    }
                    Err(ServeError::Overloaded | ServeError::DeadlineExceeded) => {
                        stats.shed += 1;
                    }
                    Err(e) => return Err(format!("typed server error: {e}")),
                }
            }
        }
        conn.in_off += 4 + len;
    }
    if conn.in_off == conn.inbuf.len() {
        conn.inbuf.clear();
        conn.in_off = 0;
    } else if conn.in_off >= 64 * 1024 {
        conn.inbuf.drain(..conn.in_off);
        conn.in_off = 0;
    }
    Ok(())
}

fn response_matches(resp: &RankResponse, exp: &Expected) -> bool {
    resp.scores.len() == exp.score_bits.len()
        && resp
            .scores
            .iter()
            .zip(&exp.score_bits)
            .all(|(s, &b)| s.to_bits() == b)
        && resp.ranking == exp.ranking
}

/// Tear down a failed connection; its in-flight requests count as failures.
fn kill_conn(conn: &mut SweepConn, poller: &mut Poller, stats: &mut SweepStats, msg: &str) {
    if !conn.dead {
        eprintln!("sweep connection failed: {msg}");
        let _ = poller.deregister(std::os::unix::io::AsRawFd::as_raw_fd(&conn.stream));
        stats.conn_failures += conn.inflight.len().max(1);
        conn.inflight.clear();
        conn.dead = true;
    }
}

/// Print one sweep result row; returns whether the configuration was clean.
fn report_sweep(
    protocol: Protocol,
    conns: usize,
    total: usize,
    mut stats: SweepStats,
    wall: Duration,
) -> bool {
    stats.latencies.sort();
    let pct = |p: f64| -> Duration {
        if stats.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((stats.latencies.len() as f64 - 1.0) * p).round() as usize;
        stats.latencies[idx]
    };
    let secs = wall.as_secs_f64().max(1e-9);
    let answered = (stats.served + stats.shed).max(1) as u64;
    println!(
        "sweep {protocol:<6} conns={conns:<6} served {:>7}  shed {:>5}  {:>9.1} req/s  \
         p50 {:>9.3?}  p99 {:>9.3?}  p99.9 {:>9.3?}  bytes/req out {:>5} in {:>5}",
        stats.served,
        stats.shed,
        stats.served as f64 / secs,
        pct(0.50),
        pct(0.99),
        pct(0.999),
        stats.bytes_out / answered,
        stats.bytes_in / answered,
    );
    let clean = stats.mismatched == 0 && stats.unknown_ids == 0 && stats.conn_failures == 0;
    if !clean {
        eprintln!(
            "sweep {protocol} conns={conns}: VERIFICATION FAILED — \
             {} mismatched, {} unknown ids, {} connection failures (of {total} requests)",
            stats.mismatched, stats.unknown_ids, stats.conn_failures
        );
    }
    clean
}
