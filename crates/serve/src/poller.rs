//! Zero-dependency readiness polling over raw file descriptors.
//!
//! Linux gets an epoll(7) backend — O(ready) wakeups regardless of how many
//! connections are registered, which is what lets one process hold 10k+
//! sockets. Every other unix (and Linux under `LS_POLLER=poll`, so CI can
//! exercise the fallback) gets poll(2): O(registered) per wakeup but fully
//! portable. Both are reached through direct `extern "C"` declarations —
//! std already links libc, so no crate dependency is needed.
//!
//! The API is deliberately tiny: register/modify/deregister a fd with an
//! [`Interest`] and a `u64` token, then [`Poller::wait`] for [`Event`]s.
//! Readiness is level-triggered on both backends, so a handler that leaves
//! bytes unconsumed is re-notified on the next wait — the event-loop shards
//! lean on this for fairness (bounded work per connection per iteration).
//!
//! Cross-thread wakeups use a nonblocking `UnixStream` pair ([`wake_pair`]):
//! the waker writes one byte, the loop registers the read end under a
//! reserved token and drains it. A full pipe means a wakeup is already
//! pending, which is exactly the semantics a waker needs.

use std::io::{self, Read, Write};
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Which readiness classes a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (kept in the set, no wakeups) — used while a
    /// connection waits on in-flight worker results with nothing to flush.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Reading will not block (data, EOF, or a pending error to harvest).
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
}

/// Which syscall family backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// epoll(7) — Linux only, O(ready) wakeups.
    #[cfg(target_os = "linux")]
    Epoll,
    /// poll(2) — portable fallback, O(registered) wakeups.
    Poll,
}

/// A readiness poller over raw fds.
pub enum Poller {
    /// epoll(7)-backed (Linux).
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    /// poll(2)-backed (portable).
    Poll(pollfd::PollSet),
}

impl Poller {
    /// The platform-preferred backend: epoll on Linux (unless the
    /// `LS_POLLER=poll` override asks for the fallback), poll(2) elsewhere.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Poller::default_backend())
    }

    /// The backend [`Poller::new`] would pick right now.
    pub fn default_backend() -> Backend {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("LS_POLLER").is_ok_and(|v| v == "poll") {
                Backend::Poll
            } else {
                Backend::Epoll
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }

    /// Construct a poller on an explicit backend (tests exercise both).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller::Epoll(epoll::Epoll::new()?)),
            Backend::Poll => Ok(Poller::Poll(pollfd::PollSet::new())),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => Backend::Epoll,
            Poller::Poll(_) => Backend::Poll,
        }
    }

    /// Start watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`]; tokens are caller-chosen and not deduplicated.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.modify(fd, token, interest),
            Poller::Poll(p) => p.modify(fd, interest),
        }
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Block until at least one registered fd is ready (or `timeout`
    /// expires), appending readiness into `events` (cleared first). A
    /// signal-interrupted wait returns cleanly with zero events.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout does not busy-spin at 0ms.
            Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

/// Cross-thread wakeup handle for a [`Poller`] loop; see [`wake_pair`].
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudge the loop: write one byte into the pipe. A full pipe (WouldBlock)
    /// means a wakeup is already pending — that is success, not failure.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// Build a waker and the read end its loop must register (level-triggered,
/// [`Interest::READ`]) under a reserved token. Drain the read end with
/// [`drain_wake`] on every wakeup so the level-triggered readiness clears.
pub fn wake_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, rx))
}

/// Drain all pending wakeup bytes from the read end of a [`wake_pair`].
pub fn drain_wake(rx: &UnixStream) {
    let mut r: &UnixStream = rx;
    let mut buf = [0u8; 64];
    while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest};
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;

    // epoll event mask bits (linux/eventpoll.h).
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    // The kernel ABI packs this struct on x86-64 (12 bytes); other
    // architectures use natural alignment. Fields must be copied by value —
    // taking a reference into a packed struct is undefined behavior.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An epoll instance plus its reusable event buffer.
    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal interrupting the wait is not an error: report
                // zero events and let the loop re-enter.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for slot in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let bits = slot.events;
                let token = slot.data;
                events.push(Event {
                    token,
                    // Errors and hangups surface as readable so the handler's
                    // next read() harvests the real io::Error or EOF.
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

mod pollfd {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_ulong};
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// A poll(2) fd set: parallel fd/token arrays plus an index for O(1)
    /// modify/deregister (deregister swap-removes, so order is not stable).
    pub struct PollSet {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
        index: HashMap<RawFd, usize>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
            let &i = self
                .index
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask(interest);
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .index
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            if self.fds.is_empty() {
                // poll(2) with zero fds still honors the timeout, but an
                // empty set with an infinite timeout would hang forever;
                // the event loops always keep their wake pipe registered.
                if timeout_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                }
                return Ok(());
            }
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, &token) in self.fds.iter_mut().zip(&self.tokens) {
                let bits = slot.revents;
                slot.revents = 0;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn readable_event_fires_and_clears() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing pending: times out with no events.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");
            // One byte written: readable under the registered token.
            (&a).write_all(&[9]).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{backend:?}: missing readable event"
            );
            // Drain, and the level-triggered readiness clears.
            let mut buf = [0u8; 8];
            let _ = (&b).read(&mut buf).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: readiness failed to clear");
            poller.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn modify_gates_write_interest() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Read interest only: an idle writable socket stays silent.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: writable leaked through");
            poller.modify(a.as_raw_fd(), 1, Interest::BOTH).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{backend:?}: missing writable event"
            );
            poller.deregister(a.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn waker_wakes_a_blocked_loop() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (waker, rx) = wake_pair().unwrap();
            poller
                .register(rx.as_raw_fd(), u64::MAX, Interest::READ)
                .unwrap();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
                waker.wake(); // coalesces, must not block
                waker // keep the write end open: dropping it would HUP rx
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == u64::MAX && e.readable),
                "{backend:?}: wakeup missed"
            );
            // Both wake bytes are in flight only once the writer has exited;
            // drain after the join or the second byte re-arms the fd.
            let _waker = handle.join().unwrap();
            drain_wake(&rx);
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: wake byte not drained");
        }
    }

    #[test]
    fn deregistered_fd_stops_reporting() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
            (&a).write_all(&[1]).unwrap();
            poller.deregister(b.as_raw_fd()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: zombie registration");
        }
    }
}
