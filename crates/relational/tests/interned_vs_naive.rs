//! Differential property tests for the interned evaluator.
//!
//! The interned pipeline (dictionary ids, flat join intermediates, arena-backed
//! lineage) is an optimization, not a semantics change, so the whole engine is
//! checked here against a deliberately naive reference evaluator that works on
//! decoded [`Value`]s: nested-loop cross products, per-combination predicate
//! checks, `BTreeMap` grouping, and an independent quadratic DNF minimizer.
//! On every random database and SPJU query the two must agree bit for bit —
//! same output tuples in the same order with identical minimal lineages.

use ls_relational::{
    evaluate, CmpOp, ColRef, ColType, Database, FactId, JoinCond, Monomial, Query, Row, Selection,
    SpjBlock, TableRef, TableSchema, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Naive reference evaluator
// ---------------------------------------------------------------------------

/// Quadratic reference minimizer: keep exactly the monomials that no *other*
/// distinct monomial subsumes, sorted by (length, content). Independent of
/// both `minimize_dnf` and the arena's absorption pass.
fn naive_minimize(monos: Vec<Monomial>) -> Vec<Monomial> {
    let mut uniq: Vec<Monomial> = Vec::new();
    for m in monos {
        if !uniq.contains(&m) {
            uniq.push(m);
        }
    }
    let mut kept: Vec<Monomial> = uniq
        .iter()
        .filter(|m| !uniq.iter().any(|k| k != *m && k.subsumes(m)))
        .cloned()
        .collect();
    kept.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    kept
}

/// Nested-loop SPJU evaluation over decoded rows. Returns the output relation
/// in `Vec<Value>` order with minimal sorted lineages — the exact contract of
/// `evaluate(..).tuples`.
fn naive_evaluate(db: &Database, q: &Query) -> Vec<(Vec<Value>, Vec<Monomial>)> {
    let mut grouped: BTreeMap<Vec<Value>, Vec<Monomial>> = BTreeMap::new();
    for block in &q.blocks {
        // Decoded rows per alias, in FROM order.
        let alias_rows: Vec<(&str, Vec<Row>)> = block
            .tables
            .iter()
            .map(|t| (t.alias.as_str(), db.decoded_rows(&t.table).collect()))
            .collect();
        if alias_rows.iter().any(|(_, rows)| rows.is_empty()) {
            continue;
        }
        let cell = |combo: &[usize], c: &ColRef| -> Value {
            let (pos, (_, rows)) = alias_rows
                .iter()
                .enumerate()
                .find(|(_, (a, _))| *a == c.table)
                .expect("alias in scope");
            let table = block.table_of_alias(&c.table).expect("alias resolves");
            let ci = db
                .catalog()
                .table(table)
                .and_then(|s| s.col_index(&c.column))
                .expect("column exists");
            rows[combo[pos]].values[ci].clone()
        };
        // Odometer over the full cross product.
        let mut combo = vec![0usize; alias_rows.len()];
        'product: loop {
            let joins_ok = block
                .joins
                .iter()
                .all(|j| cell(&combo, &j.left) == cell(&combo, &j.right));
            let sels_ok = block
                .selections
                .iter()
                .all(|s| s.matches(&cell(&combo, s.col())));
            if joins_ok && sels_ok {
                let values: Vec<Value> = block.projection.iter().map(|c| cell(&combo, c)).collect();
                let facts: Vec<FactId> = combo
                    .iter()
                    .zip(&alias_rows)
                    .map(|(&i, (_, rows))| rows[i].fact)
                    .collect();
                grouped
                    .entry(values)
                    .or_default()
                    .push(Monomial::from_facts(facts));
            }
            let mut pos = 0;
            loop {
                combo[pos] += 1;
                if combo[pos] < alias_rows[pos].1.len() {
                    break;
                }
                combo[pos] = 0;
                pos += 1;
                if pos == combo.len() {
                    break 'product;
                }
            }
        }
    }
    grouped
        .into_iter()
        .map(|(v, monos)| (v, naive_minimize(monos)))
        .collect()
}

// ---------------------------------------------------------------------------
// Random databases and queries
// ---------------------------------------------------------------------------

/// Every table is `t0`/`t1`/`t2` with schema `(k: Int, s: Str)`; values come
/// from tiny domains so joins and selections actually hit.
type DbRows = Vec<Vec<(i64, String)>>;

fn small_str() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("ab"), Just("c")].prop_map(str::to_owned)
}

fn db_rows() -> impl Strategy<Value = DbRows> {
    proptest::collection::vec(
        proptest::collection::vec((0i64..4, small_str()), 0..5),
        3..=3,
    )
}

fn build_db(rows: &DbRows) -> Database {
    let mut db = Database::new();
    for (ti, trows) in rows.iter().enumerate() {
        let name = format!("t{ti}");
        db.create_table(TableSchema::new(
            &name,
            &[("k", ColType::Int), ("s", ColType::Str)],
        ));
        for (k, s) in trows {
            db.insert(&name, vec![Value::Int(*k), Value::Str(s.clone())]);
        }
    }
    db
}

fn col_name() -> impl Strategy<Value = String> {
    prop_oneof![Just("k"), Just("s")].prop_map(str::to_owned)
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1i64..5).prop_map(Value::Int),
        small_str().prop_map(Value::Str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn selection(tables: Vec<String>) -> impl Strategy<Value = Selection> {
    let t2 = tables.clone();
    let cmp =
        (0..tables.len(), col_name(), cmp_op(), literal()).prop_map(move |(t, c, op, lit)| {
            Selection::Cmp {
                col: ColRef::new(tables[t].clone(), c),
                op,
                lit,
            }
        });
    let prefix = prop_oneof![Just(""), Just("a"), Just("b"), Just("z")].prop_map(str::to_owned);
    let starts =
        (0..t2.len(), col_name(), prefix).prop_map(move |(t, c, p)| Selection::StartsWith {
            col: ColRef::new(t2[t].clone(), c),
            prefix: p,
        });
    prop_oneof![cmp, starts]
}

/// A random well-formed SPJ block over the fixed three-table schema.
fn spj_block() -> impl Strategy<Value = SpjBlock> {
    (proptest::collection::vec(0usize..3, 1..4), any::<bool>()).prop_flat_map(
        |(mut tids, distinct)| {
            tids.sort_unstable();
            tids.dedup();
            let tables: Vec<String> = tids.iter().map(|i| format!("t{i}")).collect();
            let n = tables.len();
            let trefs: Vec<TableRef> = tables.iter().map(TableRef::plain).collect();
            let tables2 = tables.clone();
            let tables3 = tables.clone();
            let proj = proptest::collection::vec(
                (0..n, col_name()).prop_map(move |(t, c)| ColRef::new(tables2[t].clone(), c)),
                1..3,
            );
            let sels = proptest::collection::vec(selection(tables.clone()), 0..3);
            let joins = if n < 2 {
                Just(Vec::new()).boxed()
            } else {
                proptest::collection::vec(
                    (0..n, 0..n, col_name(), col_name()).prop_filter_map(
                        "join must connect two distinct tables",
                        move |(a, b, ca, cb)| {
                            if a == b {
                                None
                            } else {
                                Some(JoinCond::new(
                                    ColRef::new(tables3[a].clone(), ca),
                                    ColRef::new(tables3[b].clone(), cb),
                                ))
                            }
                        },
                    ),
                    0..3,
                )
                .boxed()
            };
            (proj, sels, joins).prop_map(move |(projection, selections, joins)| SpjBlock {
                tables: trefs.clone(),
                joins,
                selections,
                projection,
                distinct,
            })
        },
    )
}

/// A random SPJU query: one block, or a union of two arity-aligned blocks.
fn spju_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        spj_block().prop_map(Query::single),
        (spj_block(), spj_block()).prop_map(|(a, mut b)| {
            let arity = a.projection.len();
            while b.projection.len() > arity {
                b.projection.pop();
            }
            while b.projection.len() < arity {
                let c = b.projection[0].clone();
                b.projection.push(c);
            }
            Query { blocks: vec![a, b] }
        }),
    ]
}

// ---------------------------------------------------------------------------
// Deterministic absorption regression
// ---------------------------------------------------------------------------

/// A union whose narrow branch strictly subsumes the wide branch's lineages:
/// `SELECT t0.s FROM t0` vs `SELECT t0.s FROM t0, t1`. Every wide monomial
/// contains the matching narrow fact, so minimization must collapse each
/// group to the single-fact monomials — in both pipelines identically. The
/// random generator rarely lands on this shape, so it is pinned here.
#[test]
fn union_absorption_matches_naive() {
    let rows: DbRows = vec![
        vec![(1, "a".into()), (2, "b".into()), (1, "a".into())],
        vec![(7, "x".into()), (8, "y".into())],
        vec![],
    ];
    let db = build_db(&rows);
    let narrow = SpjBlock {
        tables: vec![TableRef::plain("t0")],
        joins: vec![],
        selections: vec![],
        projection: vec![ColRef::new("t0", "s")],
        distinct: true,
    };
    let wide = SpjBlock {
        tables: vec![TableRef::plain("t0"), TableRef::plain("t1")],
        joins: vec![],
        selections: vec![],
        projection: vec![ColRef::new("t0", "s")],
        distinct: true,
    };
    let q = Query {
        blocks: vec![narrow, wide],
    };
    let result = evaluate(&db, &q).expect("well-formed query must evaluate");
    let reference = naive_evaluate(&db, &q);
    assert_eq!(result.tuples.len(), reference.len());
    for (got, (want_values, want_monos)) in result.tuples.iter().zip(&reference) {
        assert_eq!(&got.values, want_values);
        assert_eq!(&got.derivations, want_monos);
        // Absorption fired: only the narrow branch's single-fact monomials
        // survive (two for "a" — duplicate t0 rows — one for "b").
        assert!(got.derivations.iter().all(|m| m.len() == 1));
    }
}

// ---------------------------------------------------------------------------
// The differential property
// ---------------------------------------------------------------------------

proptest! {
    /// The interned evaluator agrees with the naive decoded-value reference on
    /// every random database and SPJU query: same tuples, same order, same
    /// minimal lineages.
    #[test]
    fn interned_evaluator_matches_naive(rows in db_rows(), q in spju_query()) {
        let db = build_db(&rows);
        let result = evaluate(&db, &q).expect("well-formed query must evaluate");
        let reference = naive_evaluate(&db, &q);
        prop_assert_eq!(result.tuples.len(), reference.len(), "tuple counts differ");
        for (got, (want_values, want_monos)) in result.tuples.iter().zip(&reference) {
            prop_assert_eq!(&got.values, want_values);
            prop_assert_eq!(&got.derivations, want_monos);
        }
        // The interned mirror decodes to the same relation.
        prop_assert_eq!(result.interned.len(), result.tuples.len());
        let dict = db.dict();
        for (it, t) in result.interned.tuples.iter().zip(&result.tuples) {
            prop_assert_eq!(&dict.decode_row(it.values.as_slice()), &t.values);
        }
    }

    /// Witness sets agree between id space and value space on random inputs
    /// (the invariant `witness_set_ids` relies on).
    #[test]
    fn interned_rows_decode_injectively(rows in db_rows(), q in spju_query()) {
        let db = build_db(&rows);
        let result = evaluate(&db, &q).expect("well-formed query must evaluate");
        let dict = db.dict();
        let mut decoded: Vec<Vec<Value>> = result
            .interned
            .witness_ids()
            .map(|r| dict.decode_row(r.as_slice()))
            .collect();
        let n = decoded.len();
        decoded.sort();
        decoded.dedup();
        prop_assert_eq!(decoded.len(), n, "distinct id rows decoded to equal value rows");
    }
}
