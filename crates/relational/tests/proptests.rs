//! Property-based tests for the relational substrate: parser/printer
//! round-trips, monomial algebra laws, and DNF minimization invariants.

use ls_relational::{
    minimize_dnf, parse_query, to_sql, CmpOp, ColRef, FactId, JoinCond, Monomial, Query, Selection,
    SpjBlock, TableRef, Value,
};
use proptest::prelude::*;

/// Strategy for a lowercase SQL identifier (keywords excluded).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("identifier must not be a keyword", |s| {
        !matches!(
            s.as_str(),
            "select" | "distinct" | "from" | "where" | "and" | "union" | "like" | "as"
        )
    })
}

/// Strategy for a literal value.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        "[a-zA-Z0-9 ']{0,8}".prop_map(Value::Str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// A random well-formed SPJ block over 1–3 tables.
fn spj_block() -> impl Strategy<Value = SpjBlock> {
    (proptest::collection::vec(ident(), 1..4), any::<bool>()).prop_flat_map(
        |(mut tables, distinct)| {
            tables.sort();
            tables.dedup();
            let n = tables.len();
            let trefs: Vec<TableRef> = tables.iter().map(TableRef::plain).collect();
            let tables2 = tables.clone();
            let tables3 = tables.clone();
            let col = move |t: usize| {
                let tabs = tables2.clone();
                ident().prop_map(move |c| ColRef::new(tabs[t % tabs.len()].clone(), c))
            };
            let proj = proptest::collection::vec((0..n).prop_flat_map(col.clone()), 1..3);
            let sels = proptest::collection::vec(
                ((0..n).prop_flat_map(col.clone()), cmp_op(), value())
                    .prop_map(|(col, op, lit)| Selection::Cmp { col, op, lit }),
                0..3,
            );
            let joins = if n < 2 {
                Just(Vec::new()).boxed()
            } else {
                proptest::collection::vec(
                    (0..n, 0..n, ident(), ident()).prop_filter_map(
                        "join must connect two distinct tables",
                        move |(a, b, ca, cb)| {
                            if a == b {
                                None
                            } else {
                                Some(JoinCond::new(
                                    ColRef::new(tables3[a].clone(), ca),
                                    ColRef::new(tables3[b].clone(), cb),
                                ))
                            }
                        },
                    ),
                    0..3,
                )
                .boxed()
            };
            (proj, sels, joins).prop_map(move |(projection, selections, joins)| SpjBlock {
                tables: trefs.clone(),
                joins,
                selections,
                projection,
                distinct,
            })
        },
    )
}

fn fact_set() -> impl Strategy<Value = Monomial> {
    proptest::collection::vec(0u32..32, 0..8)
        .prop_map(|v| Monomial::from_facts(v.into_iter().map(FactId).collect()))
}

proptest! {
    /// `parse(print(q)) == q` — the printer emits exactly the parser dialect.
    /// (String literals may contain quotes; escaping must round-trip.)
    #[test]
    fn print_parse_roundtrip(block in spj_block()) {
        let q = Query::single(block);
        let sql = to_sql(&q);
        let parsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(parsed, q);
    }

    /// Union of two blocks with equal arity round-trips too.
    #[test]
    fn union_roundtrip(a in spj_block(), b in spj_block()) {
        let mut b = b;
        // Make arities match by truncating/padding the second projection.
        let arity = a.projection.len();
        while b.projection.len() > arity { b.projection.pop(); }
        while b.projection.len() < arity {
            let c = b.projection[0].clone();
            b.projection.push(c);
        }
        let q = Query { blocks: vec![a, b] };
        let sql = to_sql(&q);
        let parsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(parsed, q);
    }

    /// Monomial conjunction is associative, commutative and idempotent.
    #[test]
    fn monomial_semilattice(a in fact_set(), b in fact_set(), c in fact_set()) {
        prop_assert_eq!(a.and(&b), b.and(&a));
        prop_assert_eq!(a.and(&b).and(&c), a.and(&b.and(&c)));
        prop_assert_eq!(a.and(&a), a.clone());
        prop_assert_eq!(a.and(&Monomial::one()), a);
    }

    /// Subsumption agrees with set inclusion of fact sets.
    #[test]
    fn subsumption_is_inclusion(a in fact_set(), b in fact_set()) {
        let inc = a.facts().iter().all(|f| b.contains(*f));
        prop_assert_eq!(a.subsumes(&b), inc);
    }

    /// After minimization no monomial subsumes another, and the minimized DNF
    /// is logically equivalent to the input on every assignment (checked by
    /// sampling assignments as subsets of mentioned facts).
    #[test]
    fn minimize_dnf_sound(monos in proptest::collection::vec(fact_set(), 0..8), seed in any::<u64>()) {
        let min = minimize_dnf(monos.clone());
        for (i, m) in min.iter().enumerate() {
            for (j, m2) in min.iter().enumerate() {
                if i != j {
                    prop_assert!(!m.subsumes(m2), "{m} subsumes {m2} after minimization");
                }
            }
        }
        // Evaluate both DNFs under pseudo-random assignments.
        let mut facts: Vec<FactId> = monos.iter().flat_map(|m| m.facts().to_vec()).collect();
        facts.sort_unstable();
        facts.dedup();
        let mut state = seed | 1;
        for _ in 0..16 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let chosen: Vec<FactId> = facts
                .iter()
                .enumerate()
                .filter(|(i, _)| (state >> (i % 64)) & 1 == 1)
                .map(|(_, f)| *f)
                .collect();
            let sat = |dnf: &[Monomial]| {
                dnf.iter().any(|m| m.facts().iter().all(|f| chosen.contains(f)))
            };
            prop_assert_eq!(sat(&monos), sat(&min));
        }
    }
}
