//! Property tests for the provenance semirings.
//!
//! Two layers of assurance:
//!
//! 1. **Algebraic laws.** Commutativity/associativity of `add`, associativity
//!    and commutativity of `mult`, the identity elements, annihilation by
//!    zero, and absorption (`a + a·b = a`) are checked *observationally*: two
//!    tags are equal iff `recover_fn(saturate(tag))` agrees. Raw tags may
//!    differ (e.g. `Sum` clause order before minimization) — only the
//!    recovered output is the semantics. Absorption is checked for the three
//!    clause-backed instances; `Counting` is bag arithmetic where
//!    `a + a·b ≠ a` by design, and its documented non-law is pinned here too.
//! 2. **Differential multiplicity.** `Counting` is pinned against a
//!    brute-force odometer evaluator: on every random database and SPJ query,
//!    the tag of each output tuple must equal the number of satisfying base
//!    row combinations.

// The law macro expands one body against every instance; the `.clone()`s are
// required for the `DnfTag`-tagged instances and merely redundant for
// `Counting`'s `u64` tags.
#![allow(clippy::clone_on_copy)]

use ls_relational::{
    evaluate_with, ColRef, ColType, Counting, Database, DnfTag, FactId, JoinCond, MonotoneDnf,
    Probabilistic, Provenance, Query, Row, SpjBlock, TableRef, TableSchema, TopKClauses, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Observational equality helpers
// ---------------------------------------------------------------------------

/// Clause sets over a tiny fact domain — the random "programs" the laws are
/// exercised on.
type Clauses = Vec<Vec<u32>>;

fn clauses() -> impl Strategy<Value = Clauses> {
    proptest::collection::vec(proptest::collection::vec(0u32..6, 0..4), 0..4)
}

/// Build a tag from a clause set using only the semiring operations:
/// `Σᵢ Πⱼ tagging_fn(fᵢⱼ)`.
fn tag_from<P: Provenance>(p: &mut P, cs: &Clauses) -> P::Tag {
    let mut sum = p.zero();
    for c in cs {
        let mut prod = p.one();
        for &f in c {
            let lit = p.tagging_fn(FactId(f));
            prod = p.mult(&prod, &lit);
        }
        sum = p.add(sum, prod);
    }
    sum
}

/// The observable value of a clause-backed tag: the recovered clause refs
/// lowered to sorted fact vectors (already canonically ordered by
/// minimization).
fn obs_clauses(arena: &ls_relational::LineageArena, refs: &[ls_relational::MonoRef]) -> Clauses {
    refs.iter()
        .map(|&r| arena.facts(r).iter().map(|f| f.0).collect())
        .collect()
}

fn obs_dnf(p: &mut MonotoneDnf, t: DnfTag) -> Clauses {
    let t = p.saturate(t);
    let refs = p.recover_fn(&t);
    obs_clauses(p.arena(), &refs)
}

fn obs_topk(p: &mut TopKClauses, t: DnfTag) -> Clauses {
    let t = p.saturate(t);
    let refs = p.recover_fn(&t);
    obs_clauses(p.arena(), &refs)
}

fn obs_prob(p: &mut Probabilistic, t: DnfTag) -> f64 {
    let t = p.saturate(t);
    p.recover_fn(&t)
}

/// Run `law` on the three clause-backed instances plus `Counting`, asserting
/// the observable outputs of both sides agree. `law` builds both sides from
/// the same instance so arena refs stay comparable.
macro_rules! law_all_instances {
    ($p:ident => $body:block) => {{
        {
            let mut inst = MonotoneDnf::new();
            let (l, r) = {
                let $p = &mut inst;
                $body
            };
            let (l, r) = (obs_dnf(&mut inst, l), obs_dnf(&mut inst, r));
            prop_assert_eq!(l, r, "MonotoneDnf");
        }
        {
            let mut inst = Counting;
            let (l, r) = {
                let $p = &mut inst;
                $body
            };
            prop_assert_eq!(inst.recover_fn(&l), inst.recover_fn(&r), "Counting");
        }
        {
            let mut inst = Probabilistic::new(0.5);
            let (l, r) = {
                let $p = &mut inst;
                $body
            };
            let (l, r) = (obs_prob(&mut inst, l), obs_prob(&mut inst, r));
            prop_assert_eq!(l, r, "Probabilistic");
        }
        for k in [1usize, 2, 8] {
            let mut inst = TopKClauses::new(k);
            let (l, r) = {
                let $p = &mut inst;
                $body
            };
            let (l, r) = (obs_topk(&mut inst, l), obs_topk(&mut inst, r));
            prop_assert_eq!(l, r, "TopKClauses(k={})", k);
        }
    }};
}

proptest! {
    /// `a + b = b + a` in every instance.
    #[test]
    fn add_is_commutative(a in clauses(), b in clauses()) {
        law_all_instances!(p => {
            let (ta, tb) = (tag_from(p, &a), tag_from(p, &b));
            let l = Provenance::add(p, ta.clone(), tb.clone());
            let r = Provenance::add(p, tb, ta);
            (l, r)
        });
    }

    /// `(a + b) + c = a + (b + c)` in every instance.
    #[test]
    fn add_is_associative(a in clauses(), b in clauses(), c in clauses()) {
        law_all_instances!(p => {
            let (ta, tb, tc) = (tag_from(p, &a), tag_from(p, &b), tag_from(p, &c));
            let ab = Provenance::add(p, ta.clone(), tb.clone());
            let l = Provenance::add(p, ab, tc.clone());
            let bc = Provenance::add(p, tb, tc);
            let r = Provenance::add(p, ta, bc);
            (l, r)
        });
    }

    /// `a · b = b · a` in every instance.
    #[test]
    fn mult_is_commutative(a in clauses(), b in clauses()) {
        law_all_instances!(p => {
            let (ta, tb) = (tag_from(p, &a), tag_from(p, &b));
            let l = Provenance::mult(p, &ta, &tb);
            let r = Provenance::mult(p, &tb, &ta);
            (l, r)
        });
    }

    /// `(a · b) · c = a · (b · c)` in every instance.
    #[test]
    fn mult_is_associative(a in clauses(), b in clauses(), c in clauses()) {
        law_all_instances!(p => {
            let (ta, tb, tc) = (tag_from(p, &a), tag_from(p, &b), tag_from(p, &c));
            let ab = Provenance::mult(p, &ta, &tb);
            let l = Provenance::mult(p, &ab, &tc);
            let bc = Provenance::mult(p, &tb, &tc);
            let r = Provenance::mult(p, &ta, &bc);
            (l, r)
        });
    }

    /// `a + 0 = a`, `0 + a = a`, `a · 1 = a`, `1 · a = a`, `0 · a = 0`.
    #[test]
    fn identities_and_annihilation(a in clauses()) {
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let zero = Provenance::zero(p);
            let l = Provenance::add(p, ta.clone(), zero);
            (l, ta)
        });
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let zero = Provenance::zero(p);
            let l = Provenance::add(p, zero, ta.clone());
            (l, ta)
        });
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let one = Provenance::one(p);
            let l = Provenance::mult(p, &ta, &one);
            (l, ta)
        });
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let one = Provenance::one(p);
            let l = Provenance::mult(p, &one, &ta);
            (l, ta)
        });
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let zero = Provenance::zero(p);
            let l = Provenance::mult(p, &zero, &ta);
            let r = Provenance::zero(p);
            (l, r)
        });
    }

    /// Absorption `a + a·b = a` holds in the three clause-backed instances
    /// (their saturation is DNF minimization, which drops subsumed clauses).
    #[test]
    fn absorption_in_clause_instances(a in clauses(), b in clauses()) {
        // Absorption only makes sense for a non-trivial absorber: an empty
        // clause set is zero and the law degenerates to the zero identity.
        {
            let mut p = MonotoneDnf::new();
            let (ta, tb) = (tag_from(&mut p, &a), tag_from(&mut p, &b));
            let ab = p.mult(&ta, &tb);
            let l = p.add(ta.clone(), ab);
            prop_assert_eq!(obs_dnf(&mut p, l), obs_dnf(&mut p, ta));
        }
        {
            let mut p = Probabilistic::new(0.5);
            let (ta, tb) = (tag_from(&mut p, &a), tag_from(&mut p, &b));
            let ab = p.mult(&ta, &tb);
            let l = p.add(ta.clone(), ab);
            prop_assert_eq!(obs_prob(&mut p, l), obs_prob(&mut p, ta));
        }
        for k in [2usize, 8] {
            let mut p = TopKClauses::new(k);
            let (ta, tb) = (tag_from(&mut p, &a), tag_from(&mut p, &b));
            let ab = p.mult(&ta, &tb);
            let l = p.add(ta.clone(), ab);
            prop_assert_eq!(obs_topk(&mut p, l), obs_topk(&mut p, ta), "k={}", k);
        }
    }

    /// Saturation is idempotent in every instance: a second pass is a no-op.
    #[test]
    fn saturate_is_idempotent(a in clauses()) {
        law_all_instances!(p => {
            let ta = tag_from(p, &a);
            let once = Provenance::saturate(p, ta);
            let twice = Provenance::saturate(p, once.clone());
            (once, twice)
        });
    }
}

/// `Counting` deliberately breaks absorption — it is bag arithmetic, not
/// clause algebra. Pin the non-law so a future "optimization" can't silently
/// start absorbing counts.
#[test]
fn counting_documents_absorption_non_law() {
    let mut c = Counting;
    let (a, b) = (2u64, 3u64);
    let ab = c.mult(&a, &b);
    assert_eq!(c.add(a, ab), 8, "2 + 2·3 must stay 8 in bag semantics");
}

// ---------------------------------------------------------------------------
// Differential multiplicity: Counting vs brute-force odometer
// ---------------------------------------------------------------------------

/// Brute-force bag semantics: for each output tuple, the number of base row
/// combinations (per block, summed over blocks) that produce it.
fn naive_multiplicity(db: &Database, q: &Query) -> BTreeMap<Vec<Value>, u64> {
    let mut counts: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
    for block in &q.blocks {
        let alias_rows: Vec<(&str, Vec<Row>)> = block
            .tables
            .iter()
            .map(|t| (t.alias.as_str(), db.decoded_rows(&t.table).collect()))
            .collect();
        if alias_rows.iter().any(|(_, rows)| rows.is_empty()) {
            continue;
        }
        let cell = |combo: &[usize], c: &ColRef| -> Value {
            let (pos, (_, rows)) = alias_rows
                .iter()
                .enumerate()
                .find(|(_, (a, _))| *a == c.table)
                .expect("alias in scope");
            let table = block.table_of_alias(&c.table).expect("alias resolves");
            let ci = db
                .catalog()
                .table(table)
                .and_then(|s| s.col_index(&c.column))
                .expect("column exists");
            rows[combo[pos]].values[ci].clone()
        };
        let mut combo = vec![0usize; alias_rows.len()];
        'product: loop {
            let joins_ok = block
                .joins
                .iter()
                .all(|j| cell(&combo, &j.left) == cell(&combo, &j.right));
            let sels_ok = block
                .selections
                .iter()
                .all(|s| s.matches(&cell(&combo, s.col())));
            if joins_ok && sels_ok {
                let values: Vec<Value> = block.projection.iter().map(|c| cell(&combo, c)).collect();
                *counts.entry(values).or_insert(0) += 1;
            }
            let mut pos = 0;
            loop {
                combo[pos] += 1;
                if combo[pos] < alias_rows[pos].1.len() {
                    break;
                }
                combo[pos] = 0;
                pos += 1;
                if pos == combo.len() {
                    break 'product;
                }
            }
        }
    }
    counts
}

type DbRows = Vec<Vec<(i64, String)>>;

fn small_str() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("ab")].prop_map(str::to_owned)
}

fn db_rows() -> impl Strategy<Value = DbRows> {
    proptest::collection::vec(
        proptest::collection::vec((0i64..3, small_str()), 0..5),
        2..=2,
    )
}

fn build_db(rows: &DbRows) -> Database {
    let mut db = Database::new();
    for (ti, trows) in rows.iter().enumerate() {
        let name = format!("t{ti}");
        db.create_table(TableSchema::new(
            &name,
            &[("k", ColType::Int), ("s", ColType::Str)],
        ));
        for (k, s) in trows {
            db.insert(&name, vec![Value::Int(*k), Value::Str(s.clone())]);
        }
    }
    db
}

fn col_name() -> impl Strategy<Value = String> {
    prop_oneof![Just("k"), Just("s")].prop_map(str::to_owned)
}

/// A random SPJ block over the fixed two-table schema — joins, selections,
/// and possibly a duplicate-preserving projection (no DISTINCT: multiplicity
/// is the point).
fn spj_block() -> impl Strategy<Value = SpjBlock> {
    (proptest::collection::vec(0usize..2, 1..3), any::<bool>()).prop_flat_map(
        |(mut tids, distinct)| {
            tids.sort_unstable();
            tids.dedup();
            let tables: Vec<String> = tids.iter().map(|i| format!("t{i}")).collect();
            let n = tables.len();
            let trefs: Vec<TableRef> = tables.iter().map(TableRef::plain).collect();
            let t2 = tables.clone();
            let t3 = tables.clone();
            let proj = (0..n, col_name()).prop_map(move |(t, c)| ColRef::new(t2[t].clone(), c));
            let joins = if n < 2 {
                Just(Vec::new()).boxed()
            } else {
                proptest::collection::vec(
                    (col_name(), col_name()).prop_map(move |(ca, cb)| {
                        JoinCond::new(
                            ColRef::new(t3[0].clone(), ca),
                            ColRef::new(t3[1].clone(), cb),
                        )
                    }),
                    0..2,
                )
                .boxed()
            };
            (proj, joins).prop_map(move |(projection, joins)| SpjBlock {
                tables: trefs.clone(),
                joins,
                selections: Vec::new(),
                projection: vec![projection],
                distinct,
            })
        },
    )
}

proptest! {
    /// The `Counting` semiring computes exactly the brute-force multiplicity
    /// of every output tuple, on every random database and query.
    #[test]
    fn counting_matches_bruteforce_multiplicity(rows in db_rows(), block in spj_block()) {
        let q = Query::single(block);
        let db = build_db(&rows);
        let mut prov = Counting;
        let result = evaluate_with(&db, &q, &mut prov).expect("well-formed query");
        let reference = naive_multiplicity(&db, &q);
        prop_assert_eq!(result.len(), reference.len(), "tuple counts differ");
        let dict = db.dict();
        for (row, count) in &result {
            let values = dict.decode_row(row.as_slice());
            prop_assert_eq!(reference.get(&values), Some(count),
                "multiplicity mismatch for {:?}", values);
        }
    }
}
