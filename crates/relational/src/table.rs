//! In-memory tables: rows of values, each annotated with its [`FactId`].

use crate::fact::FactId;
use crate::schema::TableSchema;
use crate::value::Value;
use std::fmt;

/// A stored row: its cell values plus the fact annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Cell values, positionally matching the table schema.
    pub values: Vec<Value>,
    /// Database-wide unique fact identifier of this row.
    pub fact: FactId,
}

impl Row {
    /// Render the row as a comma-separated tuple, e.g. `(Superman, 2007)`.
    pub fn tuple_string(&self) -> String {
        let mut s = String::from("(");
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&v.to_string());
        }
        s.push(')');
        s
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tuple_string())
    }
}

/// An in-memory relation.
#[derive(Debug, Clone)]
pub struct Table {
    /// The relation schema.
    pub schema: TableSchema,
    /// Stored rows in insertion order.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Append a row with a pre-assigned fact id.
    ///
    /// # Panics
    /// Panics if the value arity or types do not match the schema; data is
    /// only inserted by trusted generators, so a mismatch is a bug.
    pub fn push(&mut self, values: Vec<Value>, fact: FactId) {
        assert_eq!(
            values.len(),
            self.schema.arity(),
            "arity mismatch inserting into `{}`",
            self.schema.name
        );
        for (v, c) in values.iter().zip(&self.schema.columns) {
            assert_eq!(
                v.col_type(),
                c.ty,
                "type mismatch for `{}`.`{}`",
                self.schema.name,
                c.name
            );
        }
        self.rows.push(Row { values, fact });
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColType;

    fn schema() -> TableSchema {
        TableSchema::new("movies", &[("title", ColType::Str), ("year", ColType::Int)])
    }

    #[test]
    fn push_and_read() {
        let mut t = Table::new(schema());
        assert!(t.is_empty());
        t.push(vec!["Superman".into(), 2007.into()], FactId(0));
        t.push(vec!["Aquaman".into(), 2007.into()], FactId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows[0].values[0], Value::from("Superman"));
        assert_eq!(t.rows[1].fact, FactId(1));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(schema());
        t.push(vec!["x".into()], FactId(0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut t = Table::new(schema());
        t.push(vec![2007.into(), "Superman".into()], FactId(0));
    }

    #[test]
    fn row_display() {
        let r = Row {
            values: vec!["Alice".into(), 45.into()],
            fact: FactId(3),
        };
        assert_eq!(r.to_string(), "(Alice, 45)");
    }
}
