//! In-memory tables: interned rows of value ids, each annotated with its
//! [`FactId`].
//!
//! Cell values live in the owning database's [`ValueDict`]; a table stores
//! only compact [`IdRow`]s plus the per-row fact annotation. [`Row`] remains
//! as the *decoded* snapshot handed to display, export and test code — it is
//! produced on demand by [`Table::decode_row`] / [`Database::fact`] and is no
//! longer the storage format.
//!
//! [`Database::fact`]: crate::database::Database::fact

use crate::dict::ValueDict;
use crate::fact::FactId;
use crate::row::IdRow;
use crate::schema::TableSchema;
use crate::value::Value;
use std::fmt;

/// A decoded row snapshot: owned cell values plus the fact annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Cell values, positionally matching the table schema.
    pub values: Vec<Value>,
    /// Database-wide unique fact identifier of this row.
    pub fact: FactId,
}

impl Row {
    /// Render the row as a comma-separated tuple, e.g. `(Superman, 2007)`.
    pub fn tuple_string(&self) -> String {
        let mut s = String::from("(");
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&v.to_string());
        }
        s.push(')');
        s
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tuple_string())
    }
}

/// An in-memory relation over interned value ids.
#[derive(Debug, Clone)]
pub struct Table {
    /// The relation schema.
    pub schema: TableSchema,
    /// Interned rows in insertion order.
    rows: Vec<IdRow>,
    /// `facts[i]` annotates `rows[i]`.
    facts: Vec<FactId>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// Append an already-interned row with a pre-assigned fact id.
    ///
    /// Type checking against the schema happens before interning, in
    /// [`crate::database::Database::insert`] — the only writer.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn push_interned(&mut self, row: IdRow, fact: FactId) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "arity mismatch inserting into `{}`",
            self.schema.name
        );
        self.rows.push(row);
        self.facts.push(fact);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The interned rows, in insertion order.
    #[inline]
    pub fn id_rows(&self) -> &[IdRow] {
        &self.rows
    }

    /// The interned row at `i`.
    #[inline]
    pub fn id_row(&self, i: usize) -> &IdRow {
        &self.rows[i]
    }

    /// Per-row fact annotations, parallel to [`Table::id_rows`].
    #[inline]
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// The fact annotating row `i`.
    #[inline]
    pub fn fact_at(&self, i: usize) -> FactId {
        self.facts[i]
    }

    /// Decode row `i` into an owned [`Row`] via the database dictionary.
    pub fn decode_row(&self, dict: &ValueDict, i: usize) -> Row {
        Row {
            values: dict.decode_row(self.rows[i].as_slice()),
            fact: self.facts[i],
        }
    }

    /// Iterate decoded rows in insertion order.
    pub fn decoded_rows<'a>(&'a self, dict: &'a ValueDict) -> impl Iterator<Item = Row> + 'a {
        (0..self.rows.len()).map(move |i| self.decode_row(dict, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColType, ValueId};

    fn schema() -> TableSchema {
        TableSchema::new("movies", &[("title", ColType::Str), ("year", ColType::Int)])
    }

    #[test]
    fn push_and_decode() {
        let mut dict = ValueDict::new();
        let mut t = Table::new(schema());
        assert!(t.is_empty());
        let r0: IdRow = [dict.intern("Superman".into()), dict.intern(2007.into())]
            .into_iter()
            .collect();
        let r1: IdRow = [dict.intern("Aquaman".into()), dict.intern(2007.into())]
            .into_iter()
            .collect();
        t.push_interned(r0, FactId(0));
        t.push_interned(r1, FactId(1));
        assert_eq!(t.len(), 2);
        // The shared year cell interned to one id.
        assert_eq!(t.id_row(0).get(1), t.id_row(1).get(1));
        assert_eq!(t.fact_at(1), FactId(1));
        let decoded: Vec<Row> = t.decoded_rows(&dict).collect();
        assert_eq!(decoded[0].values[0], Value::from("Superman"));
        assert_eq!(decoded[1].fact, FactId(1));
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(schema());
        t.push_interned(IdRow::from_slice(&[ValueId(0)]), FactId(0));
    }

    #[test]
    fn row_display() {
        let r = Row {
            values: vec!["Alice".into(), 45.into()],
            fact: FactId(3),
        };
        assert_eq!(r.to_string(), "(Alice, 45)");
    }
}
