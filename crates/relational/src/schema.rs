//! Table schemas and the database catalog.

use crate::value::ColType;
use std::collections::BTreeMap;
use std::fmt;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Column type.
    pub ty: ColType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// The schema of a single relation: its name and ordered columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Relation name, unique within the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Construct a schema from `(name, type)` column pairs.
    ///
    /// # Panics
    /// Panics if two columns share a name; schemas are tiny and constructed by
    /// hand or by generators, so a duplicate is a programming error.
    pub fn new(name: impl Into<String>, cols: &[(&str, ColType)]) -> Self {
        let columns: Vec<Column> = cols.iter().map(|(n, t)| Column::new(*n, *t)).collect();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column `{}` in table `{}`",
                c.name,
                name_ref(&columns, i)
            );
        }
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Index of the column with the given name, if present.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition with the given name, if present.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

fn name_ref(columns: &[Column], i: usize) -> &str {
    &columns[i].name
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// The catalog of relations a database exposes.
///
/// Kept separate from [`crate::database::Database`] so queries can be parsed
/// and validated against a schema without instantiating data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table schema, replacing any previous schema of that name.
    pub fn add_table(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    /// Look up a table schema by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Iterate over schemas in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies() -> TableSchema {
        TableSchema::new(
            "movies",
            &[
                ("title", ColType::Str),
                ("year", ColType::Int),
                ("company", ColType::Str),
            ],
        )
    }

    #[test]
    fn col_index_and_lookup() {
        let s = movies();
        assert_eq!(s.col_index("year"), Some(1));
        assert_eq!(s.col_index("nope"), None);
        assert_eq!(s.column("company").unwrap().ty, ColType::Str);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        TableSchema::new("t", &[("a", ColType::Int), ("a", ColType::Str)]);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add_table(movies());
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("movies").unwrap().arity(), 3);
        assert!(c.table("actors").is_none());
        let names: Vec<_> = c.tables().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["movies"]);
    }

    #[test]
    fn schema_display() {
        assert_eq!(
            movies().to_string(),
            "movies(title TEXT, year INT, company TEXT)"
        );
    }
}
