//! Hash-consed arena of provenance fact sets.
//!
//! Every distinct sorted fact set built during query evaluation is stored
//! exactly once in a flat buffer and addressed by a dense [`MonoRef`].
//! Hash-consing gives three structural wins over per-derivation `Vec`s:
//!
//! * **identity is an integer compare** — deduplication inside
//!   `minimize_dnf`, group-by of derivations, and the absorption pre-filter
//!   never re-touch fact ids for equality;
//! * **conjunction is memoized** — hash-join pipelines conjoin the same
//!   (left, right) pairs over and over (every probe row meeting every build
//!   row of a key group), and the arena answers repeats from a cache without
//!   merging slices again;
//! * **decoding shares structure** — a [`MonoRef`] decodes to an
//!   `Arc`-backed [`Monomial`] at most once, so every output tuple (and every
//!   DNF built downstream) holding the same derivation shares one allocation.
//!
//! The arena is append-only and owned by the [`crate::results::InternedResult`]
//! it was built for; `MonoRef`s are meaningless across arenas.

use crate::fact::{FactId, Monomial};
use crate::hash::FxHashMap;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;

/// A reference to an interned fact set inside a [`LineageArena`].
///
/// Within one arena, `MonoRef` equality coincides with fact-set equality
/// (hash-consing), so refs are directly usable as hash/sort keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonoRef(u32);

impl MonoRef {
    /// The ref as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over the fact ids — cheap, deterministic, and good enough for the
/// bucket map (bucket collisions fall back to slice comparison).
fn hash_facts(facts: &[FactId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in facts {
        h ^= u64::from(f.0);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (facts.len() as u64) << 56
}

/// Hash-consed storage for sorted [`FactId`] slices.
#[derive(Debug, Clone)]
pub struct LineageArena {
    /// All interned slices, concatenated.
    data: Vec<FactId>,
    /// `spans[r] = (start, len)` of ref `r` inside `data`.
    spans: Vec<(u32, u32)>,
    /// Hash-cons index: slice hash → first ref with that hash plus (rare)
    /// further collisions. The inline first slot keeps the common
    /// one-ref-per-hash case allocation-free.
    buckets: FxHashMap<u64, (MonoRef, Vec<MonoRef>)>,
    /// Memoized conjunctions, keyed by `(min, max)` operand refs.
    and_cache: FxHashMap<(MonoRef, MonoRef), MonoRef>,
    /// Decoded `Arc`-backed monomials, filled on demand.
    decoded: Vec<Option<Monomial>>,
    /// Reusable merge buffer for [`LineageArena::and`].
    scratch: Vec<FactId>,
}

impl Default for LineageArena {
    fn default() -> Self {
        Self::new()
    }
}

impl LineageArena {
    /// A fresh arena with the empty fact set pre-interned as ref 0.
    pub fn new() -> Self {
        let mut a = LineageArena {
            data: Vec::new(),
            spans: Vec::new(),
            buckets: FxHashMap::default(),
            and_cache: FxHashMap::default(),
            decoded: Vec::new(),
            scratch: Vec::new(),
        };
        let empty = a.intern(&[]);
        debug_assert_eq!(empty, MonoRef(0));
        a
    }

    /// The empty (`⊤`) fact set.
    #[inline]
    pub fn empty(&self) -> MonoRef {
        MonoRef(0)
    }

    /// Intern a sorted, duplicate-free fact slice.
    pub fn intern(&mut self, facts: &[FactId]) -> MonoRef {
        debug_assert!(facts.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        let h = hash_facts(facts);
        let fresh = MonoRef(self.spans.len() as u32);
        match self.buckets.entry(h) {
            Entry::Occupied(mut e) => {
                let (first, overflow) = e.get();
                let matches = |r: MonoRef, spans: &[(u32, u32)], data: &[FactId]| {
                    let (start, len) = spans[r.index()];
                    &data[start as usize..(start + len) as usize] == facts
                };
                if matches(*first, &self.spans, &self.data) {
                    return *first;
                }
                for &r in overflow.iter() {
                    if matches(r, &self.spans, &self.data) {
                        return r;
                    }
                }
                e.get_mut().1.push(fresh);
            }
            Entry::Vacant(e) => {
                e.insert((fresh, Vec::new()));
            }
        }
        let start = self.data.len() as u32;
        self.data.extend_from_slice(facts);
        self.spans.push((start, facts.len() as u32));
        self.decoded.push(None);
        fresh
    }

    /// Intern a single fact.
    pub fn singleton(&mut self, f: FactId) -> MonoRef {
        self.intern(&[f])
    }

    /// The facts of `r`, sorted ascending.
    #[inline]
    pub fn facts(&self, r: MonoRef) -> &[FactId] {
        let (start, len) = self.spans[r.index()];
        &self.data[start as usize..(start + len) as usize]
    }

    /// Number of facts in `r`.
    #[inline]
    pub fn len_of(&self, r: MonoRef) -> usize {
        self.spans[r.index()].1 as usize
    }

    /// Number of distinct interned fact sets (including the empty set).
    pub fn interned_count(&self) -> usize {
        self.spans.len()
    }

    /// Total fact slots held by the flat buffer.
    pub fn fact_slots(&self) -> usize {
        self.data.len()
    }

    /// Memoized conjunction: the interned merge of two sorted fact sets.
    pub fn and(&mut self, a: MonoRef, b: MonoRef) -> MonoRef {
        if a == b || b == self.empty() {
            return a;
        }
        if a == self.empty() {
            return b;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let mut merged = std::mem::take(&mut self.scratch);
        merged.clear();
        {
            let (xs, ys) = (self.facts(a), self.facts(b));
            merged.reserve(xs.len() + ys.len());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    Ordering::Less => {
                        merged.push(xs[i]);
                        i += 1;
                    }
                    Ordering::Greater => {
                        merged.push(ys[j]);
                        j += 1;
                    }
                    Ordering::Equal => {
                        merged.push(xs[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&xs[i..]);
            merged.extend_from_slice(&ys[j..]);
        }
        let r = self.intern(&merged);
        self.scratch = merged;
        self.and_cache.insert(key, r);
        r
    }

    /// Whether every fact of `a` also appears in `b` (so `a` absorbs `b`).
    pub fn subsumes(&self, a: MonoRef, b: MonoRef) -> bool {
        if a == b {
            return true;
        }
        let (xs, ys) = (self.facts(a), self.facts(b));
        if xs.len() > ys.len() {
            return false;
        }
        let mut j = 0;
        for f in xs {
            while j < ys.len() && ys[j] < *f {
                j += 1;
            }
            if j >= ys.len() || ys[j] != *f {
                return false;
            }
            j += 1;
        }
        true
    }

    /// The `(length, content)` order [`crate::fact::minimize_dnf`] sorts
    /// monomials in.
    pub fn cmp_monos(&self, a: MonoRef, b: MonoRef) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let (xs, ys) = (self.facts(a), self.facts(b));
        xs.len().cmp(&ys.len()).then_with(|| xs.cmp(ys))
    }

    /// DNF minimization over interned monomials: drop duplicates (free under
    /// hash-consing — equal sets share a ref) and absorbed monomials. The
    /// result is sorted by `(length, content)`, matching
    /// [`crate::fact::minimize_dnf`] bit for bit.
    ///
    /// Absorption only tests candidates against *strictly shorter* kept
    /// monomials: a same-length subsumer would have to be equal, and equals
    /// were already removed by the dedup.
    pub fn minimize(&self, mut monos: Vec<MonoRef>) -> Vec<MonoRef> {
        if monos.len() <= 1 {
            // A single monomial (the common case: one derivation per tuple)
            // is already minimal.
            return monos;
        }
        monos.sort_by(|&a, &b| self.cmp_monos(a, b));
        monos.dedup();
        // Compact survivors in place: `kept` entries live in `monos[..kept]`,
        // always at or before the read cursor.
        let mut kept = 0usize;
        let mut cur_len = usize::MAX;
        let mut shorter = 0;
        for i in 0..monos.len() {
            let m = monos[i];
            let len = self.len_of(m);
            if len != cur_len {
                cur_len = len;
                shorter = kept;
            }
            if !monos[..shorter].iter().any(|&k| self.subsumes(k, m)) {
                monos[kept] = m;
                kept += 1;
            }
        }
        monos.truncate(kept);
        monos
    }

    /// The sorted, deduplicated union of the facts of `refs` — the lineage
    /// of a recovered clause set.
    pub fn union_facts(&self, refs: &[MonoRef]) -> Vec<FactId> {
        let mut facts: Vec<FactId> = refs
            .iter()
            .flat_map(|&r| self.facts(r).iter().copied())
            .collect();
        facts.sort_unstable();
        facts.dedup();
        facts
    }

    /// Decode `r` into an `Arc`-backed [`Monomial`], memoized so repeated
    /// decodes (the same derivation reached from many tuples or DNFs) share
    /// one allocation.
    pub fn decode(&mut self, r: MonoRef) -> Monomial {
        if let Some(m) = &self.decoded[r.index()] {
            return m.clone();
        }
        let (start, len) = self.spans[r.index()];
        let m = Monomial::from_sorted_facts(&self.data[start as usize..(start + len) as usize]);
        self.decoded[r.index()] = Some(m.clone());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(ids: &[u32]) -> Vec<FactId> {
        ids.iter().copied().map(FactId).collect()
    }

    #[test]
    fn hash_consing_dedups() {
        let mut a = LineageArena::new();
        let x = a.intern(&fid(&[1, 2, 3]));
        let y = a.intern(&fid(&[1, 2, 3]));
        let z = a.intern(&fid(&[1, 2]));
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(a.interned_count(), 3); // empty + two sets
        assert_eq!(a.facts(x), fid(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn and_merges_and_memoizes() {
        let mut a = LineageArena::new();
        let x = a.intern(&fid(&[1, 3]));
        let y = a.intern(&fid(&[2, 3, 4]));
        let xy = a.and(x, y);
        assert_eq!(a.facts(xy), fid(&[1, 2, 3, 4]).as_slice());
        // Commutative + cached: same ref both ways, no new interning.
        let n = a.interned_count();
        assert_eq!(a.and(y, x), xy);
        assert_eq!(a.and(x, y), xy);
        assert_eq!(a.interned_count(), n);
        // Identity and idempotence.
        let e = a.empty();
        assert_eq!(a.and(e, x), x);
        assert_eq!(a.and(x, e), x);
        assert_eq!(a.and(x, x), x);
    }

    #[test]
    fn subsumption_and_order() {
        let mut a = LineageArena::new();
        let small = a.intern(&fid(&[1, 3]));
        let big = a.intern(&fid(&[1, 2, 3]));
        let other = a.intern(&fid(&[1, 5]));
        assert!(a.subsumes(small, big));
        assert!(!a.subsumes(other, big));
        assert!(a.subsumes(a.empty(), small));
        assert_eq!(a.cmp_monos(small, big), Ordering::Less);
        assert_eq!(a.cmp_monos(small, other), Ordering::Less);
        assert_eq!(a.cmp_monos(big, big), Ordering::Equal);
    }

    #[test]
    fn minimize_matches_monomial_minimizer() {
        let mut a = LineageArena::new();
        // [1,2,3] is absorbed by [1,2]; [2,3,4] is absorbed by [4]; the
        // duplicate [1,2] is dropped via ref equality.
        let sets: Vec<&[u32]> = vec![&[1, 2, 3], &[1, 2], &[4], &[1, 2], &[2, 3, 4]];
        let refs: Vec<MonoRef> = sets.iter().map(|s| a.intern(&fid(s))).collect();
        let min = a.minimize(refs);
        let got: Vec<Vec<FactId>> = min.iter().map(|&r| a.facts(r).to_vec()).collect();
        assert_eq!(got, vec![fid(&[4]), fid(&[1, 2])]);
    }

    #[test]
    fn decode_shares_structure() {
        let mut a = LineageArena::new();
        let x = a.intern(&fid(&[7, 9]));
        let m1 = a.decode(x);
        let m2 = a.decode(x);
        assert_eq!(m1, m2);
        assert_eq!(m1.facts(), fid(&[7, 9]).as_slice());
        // Same Arc allocation behind both decodes.
        assert!(std::ptr::eq(m1.facts().as_ptr(), m2.facts().as_ptr()));
        assert_eq!(a.decode(a.empty()), Monomial::one());
    }
}
