//! Static validation of queries against a catalog.
//!
//! The evaluator reports missing tables/columns lazily; this module performs
//! the full static check up front — existence, comparison type compatibility,
//! join-key type equality, `LIKE` restricted to string columns — with
//! structured, user-facing errors. Query generators and API users validate
//! once instead of paying evaluation to discover a typo.

use crate::algebra::{ColRef, Query, Selection, SpjBlock};
use crate::schema::Catalog;
use crate::value::ColType;
use std::fmt;

/// A static validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A `FROM` table does not exist in the catalog.
    UnknownTable {
        /// The missing relation name.
        table: String,
    },
    /// A column reference does not resolve against its relation.
    UnknownColumn {
        /// Relation name (after alias resolution).
        table: String,
        /// The missing column.
        column: String,
    },
    /// A column reference uses an alias not bound in the block.
    UnknownAlias {
        /// The unbound alias.
        alias: String,
    },
    /// A selection compares a column to a literal of the wrong type.
    SelectionTypeMismatch {
        /// The constrained column.
        col: String,
        /// The column's type.
        col_type: ColType,
        /// The literal's type.
        lit_type: ColType,
    },
    /// `LIKE` applied to a non-string column.
    LikeOnNonString {
        /// The constrained column.
        col: String,
    },
    /// An equi-join compares columns of different types.
    JoinTypeMismatch {
        /// Left side, rendered.
        left: String,
        /// Right side, rendered.
        right: String,
    },
    /// UNION branches project different types at some position.
    UnionTypeMismatch {
        /// 0-based projection position.
        position: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownTable { table } => write!(f, "unknown table `{table}`"),
            ValidateError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            ValidateError::UnknownAlias { alias } => write!(f, "unknown alias `{alias}`"),
            ValidateError::SelectionTypeMismatch {
                col,
                col_type,
                lit_type,
            } => write!(
                f,
                "selection on `{col}` compares {col_type} column to {lit_type} literal"
            ),
            ValidateError::LikeOnNonString { col } => {
                write!(f, "LIKE applied to non-string column `{col}`")
            }
            ValidateError::JoinTypeMismatch { left, right } => {
                write!(f, "join `{left} = {right}` compares different types")
            }
            ValidateError::UnionTypeMismatch { position } => {
                write!(
                    f,
                    "UNION branches disagree on the type of output column {position}"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a query against a catalog. Returns all errors found (empty =
/// valid).
pub fn validate(catalog: &Catalog, q: &Query) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    let mut proj_types: Option<Vec<ColType>> = None;
    for block in &q.blocks {
        let types = validate_block(catalog, block, &mut errors);
        match &proj_types {
            None => proj_types = Some(types),
            Some(first) => {
                for (i, (a, b)) in first.iter().zip(&types).enumerate() {
                    if a != b {
                        errors.push(ValidateError::UnionTypeMismatch { position: i });
                    }
                }
            }
        }
    }
    errors
}

/// Convenience: validate and return `Ok(())` or the first error.
pub fn validate_strict(catalog: &Catalog, q: &Query) -> Result<(), ValidateError> {
    match validate(catalog, q).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Resolve the type of a column reference, reporting any failures.
fn col_type(
    catalog: &Catalog,
    block: &SpjBlock,
    c: &ColRef,
    errors: &mut Vec<ValidateError>,
) -> Option<ColType> {
    let Some(table_name) = block.table_of_alias(&c.table) else {
        errors.push(ValidateError::UnknownAlias {
            alias: c.table.clone(),
        });
        return None;
    };
    let Some(schema) = catalog.table(table_name) else {
        // Reported once per block via the FROM check; avoid duplicates here.
        return None;
    };
    match schema.column(&c.column) {
        Some(col) => Some(col.ty),
        None => {
            errors.push(ValidateError::UnknownColumn {
                table: table_name.to_owned(),
                column: c.column.clone(),
            });
            None
        }
    }
}

fn validate_block(
    catalog: &Catalog,
    block: &SpjBlock,
    errors: &mut Vec<ValidateError>,
) -> Vec<ColType> {
    for t in &block.tables {
        if catalog.table(&t.table).is_none() {
            errors.push(ValidateError::UnknownTable {
                table: t.table.clone(),
            });
        }
    }
    for s in &block.selections {
        let Some(ct) = col_type(catalog, block, s.col(), errors) else {
            continue;
        };
        match s {
            Selection::Cmp { lit, .. } => {
                if lit.col_type() != ct {
                    errors.push(ValidateError::SelectionTypeMismatch {
                        col: s.col().to_string(),
                        col_type: ct,
                        lit_type: lit.col_type(),
                    });
                }
            }
            Selection::StartsWith { .. } => {
                if ct != ColType::Str {
                    errors.push(ValidateError::LikeOnNonString {
                        col: s.col().to_string(),
                    });
                }
            }
        }
    }
    for j in &block.joins {
        let lt = col_type(catalog, block, &j.left, errors);
        let rt = col_type(catalog, block, &j.right, errors);
        if let (Some(lt), Some(rt)) = (lt, rt) {
            if lt != rt {
                errors.push(ValidateError::JoinTypeMismatch {
                    left: j.left.to_string(),
                    right: j.right.to_string(),
                });
            }
        }
    }
    block
        .projection
        .iter()
        .filter_map(|c| col_type(catalog, block, c, errors))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::sql::parser::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(TableSchema::new(
            "movies",
            &[
                ("title", ColType::Str),
                ("year", ColType::Int),
                ("company", ColType::Str),
            ],
        ));
        c.add_table(TableSchema::new(
            "companies",
            &[("name", ColType::Str), ("country", ColType::Str)],
        ));
        c
    }

    fn check(sql: &str) -> Vec<ValidateError> {
        validate(&catalog(), &parse_query(sql).unwrap())
    }

    #[test]
    fn valid_query_passes() {
        let errs = check(
            "SELECT movies.title FROM movies, companies \
             WHERE movies.company = companies.name AND movies.year = 2007 \
             AND companies.country LIKE 'U%'",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert!(validate_strict(
            &catalog(),
            &parse_query("SELECT movies.title FROM movies").unwrap()
        )
        .is_ok());
    }

    #[test]
    fn unknown_table() {
        let errs = check("SELECT directors.name FROM directors");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnknownTable { table } if table == "directors")));
    }

    #[test]
    fn unknown_column() {
        let errs = check("SELECT movies.budget FROM movies");
        assert_eq!(
            errs,
            vec![ValidateError::UnknownColumn {
                table: "movies".into(),
                column: "budget".into()
            }]
        );
    }

    #[test]
    fn selection_type_mismatch() {
        let errs = check("SELECT movies.title FROM movies WHERE movies.year = 'abc'");
        assert!(matches!(
            errs[0],
            ValidateError::SelectionTypeMismatch { .. }
        ));
        let msg = errs[0].to_string();
        assert!(msg.contains("INT") && msg.contains("TEXT"), "{msg}");
    }

    #[test]
    fn like_on_int_column() {
        let errs = check("SELECT movies.title FROM movies WHERE movies.year LIKE '2%'");
        assert!(matches!(errs[0], ValidateError::LikeOnNonString { .. }));
    }

    #[test]
    fn join_type_mismatch() {
        let errs =
            check("SELECT movies.title FROM movies, companies WHERE movies.year = companies.name");
        assert!(matches!(errs[0], ValidateError::JoinTypeMismatch { .. }));
    }

    #[test]
    fn union_type_mismatch() {
        let errs = check("SELECT movies.title FROM movies UNION SELECT movies.year FROM movies");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnionTypeMismatch { position: 0 })));
    }

    #[test]
    fn multiple_errors_all_reported() {
        let errs = check(
            "SELECT movies.budget FROM movies WHERE movies.year = 'x' AND movies.title LIKE 'A%'",
        );
        assert!(errs.len() >= 2, "{errs:?}");
        assert!(validate_strict(
            &catalog(),
            &parse_query("SELECT movies.budget FROM movies").unwrap()
        )
        .is_err());
    }

    #[test]
    fn generated_queries_always_validate() {
        // The dbshap query generator must only produce valid queries — this
        // is checked there too, but here from the validation side with a
        // hand-rolled catalog mirror.
        let q = parse_query(
            "SELECT companies.country FROM companies WHERE companies.name LIKE 'A%' \
             UNION SELECT companies.country FROM companies WHERE companies.country = 'USA'",
        )
        .unwrap();
        assert!(validate(&catalog(), &q).is_empty());
    }
}
