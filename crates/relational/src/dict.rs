//! The per-database value dictionary.
//!
//! Every distinct [`Value`] stored in a [`crate::database::Database`] is
//! interned exactly once and addressed by a dense [`ValueId`]. Rows, join
//! keys and group-by keys throughout the evaluator are arrays of `ValueId`s:
//! equality is a `u32` compare, hashing never touches string bytes, and the
//! heap cost of a string is paid once per *distinct* value instead of once
//! per cell.
//!
//! Interning order is first-seen order, so `ValueId` order is **not** value
//! order; [`ValueDict::cmp_ids`] / [`ValueDict::cmp_rows`] compare by the
//! decoded [`Value`] order (with an id-equality fast path) for the places
//! where the engine must stay bit-compatible with value-sorted output.

use crate::hash::FxHashMap;
use crate::value::{Value, ValueId};
use std::cmp::Ordering;

/// An append-only dictionary mapping [`Value`]s to dense [`ValueId`]s.
#[derive(Debug, Clone, Default)]
pub struct ValueDict {
    /// `values[id] = value`, dense in interning order.
    values: Vec<Value>,
    /// Reverse index for interning and literal lookup.
    index: FxHashMap<Value, ValueId>,
}

impl ValueDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a value, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, v: Value) -> ValueId {
        if let Some(&id) = self.index.get(&v) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(v.clone());
        self.index.insert(v, id);
        id
    }

    /// The id of an already-interned value, if any.
    ///
    /// A `None` means the value appears nowhere in the database — an equality
    /// selection against it can short-circuit to an empty scan.
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.index.get(v).copied()
    }

    /// Decode an id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    #[inline]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Compare two ids by their decoded [`Value`] order (ids equal → equal,
    /// no decode needed; interning guarantees distinct ids decode to
    /// distinct values).
    #[inline]
    pub fn cmp_ids(&self, a: ValueId, b: ValueId) -> Ordering {
        if a == b {
            Ordering::Equal
        } else {
            self.value(a).cmp(self.value(b))
        }
    }

    /// Lexicographic comparison of two id rows under decoded value order —
    /// exactly the order `Vec<Value>` rows sort in.
    pub fn cmp_rows(&self, a: &[ValueId], b: &[ValueId]) -> Ordering {
        for (&x, &y) in a.iter().zip(b.iter()) {
            match self.cmp_ids(x, y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }

    /// Decode a row of ids into owned values.
    pub fn decode_row(&self, ids: &[ValueId]) -> Vec<Value> {
        ids.iter().map(|&id| self.value(id).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = ValueDict::new();
        let a = d.intern(Value::from("abc"));
        let b = d.intern(Value::Int(7));
        let a2 = d.intern(Value::from("abc"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), &Value::from("abc"));
        assert_eq!(d.value(b), &Value::Int(7));
    }

    #[test]
    fn lookup_misses_unseen_values() {
        let mut d = ValueDict::new();
        d.intern(Value::Int(1));
        assert!(d.lookup(&Value::Int(1)).is_some());
        assert!(d.lookup(&Value::Int(2)).is_none());
        assert!(d.lookup(&Value::from("x")).is_none());
    }

    #[test]
    fn cmp_follows_value_order_not_id_order() {
        let mut d = ValueDict::new();
        // Intern in reverse value order: ids ascend, values descend.
        let z = d.intern(Value::from("z"));
        let a = d.intern(Value::from("a"));
        let i = d.intern(Value::Int(999));
        assert!(z < a, "id order is interning order");
        assert_eq!(d.cmp_ids(z, a), Ordering::Greater);
        assert_eq!(d.cmp_ids(a, a), Ordering::Equal);
        // Ints sort before strings, as in Value's total order.
        assert_eq!(d.cmp_ids(i, a), Ordering::Less);
    }

    #[test]
    fn row_comparison_is_lexicographic() {
        let mut d = ValueDict::new();
        let a = d.intern(Value::from("a"));
        let b = d.intern(Value::from("b"));
        assert_eq!(d.cmp_rows(&[a, b], &[a, b]), Ordering::Equal);
        assert_eq!(d.cmp_rows(&[a], &[a, b]), Ordering::Less);
        assert_eq!(d.cmp_rows(&[b], &[a, b]), Ordering::Greater);
        assert_eq!(
            d.decode_row(&[b, a]),
            vec![Value::from("b"), Value::from("a")]
        );
    }
}
