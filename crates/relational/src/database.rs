//! A database: a disjoint union of annotated relations, with global fact
//! identity and reverse lookup from a [`FactId`] to its row.

use crate::fact::FactId;
use crate::schema::{Catalog, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use std::collections::BTreeMap;

/// Location of a fact inside the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactLocation {
    /// Index of the owning table in name order (see [`Database::table_names`]).
    pub table_idx: usize,
    /// Row offset inside the table.
    pub row_idx: usize,
}

/// An in-memory database with fact-annotated rows.
///
/// Fact ids are assigned densely at insertion time: the `i`-th inserted row
/// across the whole database gets `FactId(i)`. This makes `Vec`-indexed
/// per-fact side tables (Shapley vectors, seen-fact bitmaps) trivial.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// `fact_index[f] = location of fact f`, dense in insertion order.
    fact_index: Vec<FactLocation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an empty table.
    ///
    /// # Panics
    /// Panics if a table of the same name already exists.
    pub fn create_table(&mut self, schema: TableSchema) {
        let name = schema.name.clone();
        let prev = self.tables.insert(name.clone(), Table::new(schema));
        assert!(prev.is_none(), "table `{name}` already exists");
    }

    /// Insert a row, assigning and returning the next dense [`FactId`].
    ///
    /// # Panics
    /// Panics if the table does not exist or the row does not fit its schema.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> FactId {
        let fact = FactId(self.fact_index.len() as u32);
        // Compute the location before mutably borrowing the table.
        let table_idx = self
            .tables
            .keys()
            .position(|n| n == table)
            .unwrap_or_else(|| panic!("no such table `{table}`"));
        let t = self.tables.get_mut(table).expect("checked above");
        let row_idx = t.len();
        t.push(values, fact);
        self.fact_index.push(FactLocation { table_idx, row_idx });
        fact
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Table names in sorted order (stable across runs).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of facts across all tables.
    pub fn fact_count(&self) -> usize {
        self.fact_index.len()
    }

    /// The row carrying fact `f`, with its owning table name.
    pub fn fact(&self, f: FactId) -> Option<(&str, &Row)> {
        let loc = self.fact_index.get(f.index())?;
        let (name, table) = self.tables.iter().nth(loc.table_idx)?;
        Some((name.as_str(), &table.rows[loc.row_idx]))
    }

    /// The catalog view of this database.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add_table(t.schema.clone());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "movies",
            &[("title", ColType::Str), ("year", ColType::Int)],
        ));
        d.create_table(TableSchema::new("actors", &[("name", ColType::Str)]));
        d
    }

    #[test]
    fn dense_fact_ids_across_tables() {
        let mut d = db();
        let f0 = d.insert("movies", vec!["Superman".into(), 2007.into()]);
        let f1 = d.insert("actors", vec!["Alice".into()]);
        let f2 = d.insert("movies", vec!["Aquaman".into(), 2007.into()]);
        assert_eq!((f0, f1, f2), (FactId(0), FactId(1), FactId(2)));
        assert_eq!(d.fact_count(), 3);
    }

    #[test]
    fn fact_reverse_lookup() {
        let mut d = db();
        d.insert("movies", vec!["Superman".into(), 2007.into()]);
        let f = d.insert("actors", vec!["Alice".into()]);
        let (table, row) = d.fact(f).unwrap();
        assert_eq!(table, "actors");
        assert_eq!(row.values[0], Value::from("Alice"));
        assert!(d.fact(FactId(99)).is_none());
    }

    #[test]
    fn catalog_reflects_tables() {
        let d = db();
        let c = d.catalog();
        assert_eq!(c.len(), 2);
        assert!(c.table("movies").is_some());
        assert_eq!(d.table_names(), vec!["actors", "movies"]);
    }

    #[test]
    #[should_panic(expected = "no such table")]
    fn insert_into_missing_table_panics() {
        let mut d = db();
        d.insert("companies", vec!["Universal".into()]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_panics() {
        let mut d = db();
        d.create_table(TableSchema::new("movies", &[("x", ColType::Int)]));
    }
}
