//! A database: a disjoint union of annotated relations, with global fact
//! identity, a shared value dictionary, and reverse lookup from a [`FactId`]
//! to its row.

use crate::dict::ValueDict;
use crate::fact::FactId;
use crate::row::IdRow;
use crate::schema::{Catalog, TableSchema};
use crate::table::{Row, Table};
use crate::value::Value;
use std::collections::BTreeMap;

/// Location of a fact inside the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactLocation {
    /// Index of the owning table in name order (see [`Database::table_names`]).
    pub table_idx: usize,
    /// Row offset inside the table.
    pub row_idx: usize,
}

/// An in-memory database with fact-annotated, dictionary-interned rows.
///
/// Fact ids are assigned densely at insertion time: the `i`-th inserted row
/// across the whole database gets `FactId(i)`. This makes `Vec`-indexed
/// per-fact side tables (Shapley vectors, seen-fact bitmaps) trivial.
///
/// Every cell value is interned into one database-wide [`ValueDict`] at
/// insertion, so tables store [`IdRow`]s and the evaluator compares, hashes
/// and groups rows as `u32` ids. Decoded [`Value`]s are materialized only at
/// the boundaries (display, export, tokenization) via [`Database::dict`],
/// [`Database::fact`] and [`Database::decoded_rows`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// `fact_index[f] = location of fact f`, dense in insertion order.
    fact_index: Vec<FactLocation>,
    /// The shared value dictionary all tables intern into.
    dict: ValueDict,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an empty table.
    ///
    /// # Panics
    /// Panics if a table of the same name already exists.
    pub fn create_table(&mut self, schema: TableSchema) {
        let name = schema.name.clone();
        let prev = self.tables.insert(name.clone(), Table::new(schema));
        assert!(prev.is_none(), "table `{name}` already exists");
    }

    /// Insert a row, assigning and returning the next dense [`FactId`].
    ///
    /// Values are type-checked against the schema, then interned into the
    /// database dictionary.
    ///
    /// # Panics
    /// Panics if the table does not exist or the row does not fit its schema.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> FactId {
        let fact = FactId(self.fact_index.len() as u32);
        // Compute the location before mutably borrowing the table.
        let table_idx = self
            .tables
            .keys()
            .position(|n| n == table)
            .unwrap_or_else(|| panic!("no such table `{table}`"));
        let t = self.tables.get_mut(table).expect("checked above");
        assert_eq!(
            values.len(),
            t.schema.arity(),
            "arity mismatch inserting into `{}`",
            t.schema.name
        );
        for (v, c) in values.iter().zip(&t.schema.columns) {
            assert_eq!(
                v.col_type(),
                c.ty,
                "type mismatch for `{}`.`{}`",
                t.schema.name,
                c.name
            );
        }
        let row: IdRow = values.into_iter().map(|v| self.dict.intern(v)).collect();
        let row_idx = t.len();
        t.push_interned(row, fact);
        self.fact_index.push(FactLocation { table_idx, row_idx });
        fact
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Table names in sorted order (stable across runs).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// The shared value dictionary.
    #[inline]
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Total number of facts across all tables.
    pub fn fact_count(&self) -> usize {
        self.fact_index.len()
    }

    /// The table index (in [`Database::table_names`] order) owning fact `f`.
    /// This is the stratum key for relation-stratified Shapley sampling:
    /// O(1), no row decoding.
    pub fn fact_table_idx(&self, f: FactId) -> Option<usize> {
        self.fact_index.get(f.index()).map(|loc| loc.table_idx)
    }

    /// The decoded row carrying fact `f`, with its owning table name.
    pub fn fact(&self, f: FactId) -> Option<(&str, Row)> {
        let loc = self.fact_index.get(f.index())?;
        let (name, table) = self.tables.iter().nth(loc.table_idx)?;
        Some((name.as_str(), table.decode_row(&self.dict, loc.row_idx)))
    }

    /// The decoded value at `(table, row, col)`, if all three are in range.
    pub fn cell(&self, table: &str, row: usize, col: usize) -> Option<&Value> {
        let t = self.tables.get(table)?;
        let id = t.id_rows().get(row)?.get(col)?;
        Some(self.dict.value(id))
    }

    /// Iterate decoded rows of `table` in insertion order.
    ///
    /// # Panics
    /// Panics if the table does not exist.
    pub fn decoded_rows<'a>(&'a self, table: &str) -> impl Iterator<Item = Row> + 'a {
        let t = self
            .tables
            .get(table)
            .unwrap_or_else(|| panic!("no such table `{table}`"));
        t.decoded_rows(&self.dict)
    }

    /// The catalog view of this database.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add_table(t.schema.clone());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "movies",
            &[("title", ColType::Str), ("year", ColType::Int)],
        ));
        d.create_table(TableSchema::new("actors", &[("name", ColType::Str)]));
        d
    }

    #[test]
    fn dense_fact_ids_across_tables() {
        let mut d = db();
        let f0 = d.insert("movies", vec!["Superman".into(), 2007.into()]);
        let f1 = d.insert("actors", vec!["Alice".into()]);
        let f2 = d.insert("movies", vec!["Aquaman".into(), 2007.into()]);
        assert_eq!((f0, f1, f2), (FactId(0), FactId(1), FactId(2)));
        assert_eq!(d.fact_count(), 3);
    }

    #[test]
    fn fact_reverse_lookup() {
        let mut d = db();
        d.insert("movies", vec!["Superman".into(), 2007.into()]);
        let f = d.insert("actors", vec!["Alice".into()]);
        let (table, row) = d.fact(f).unwrap();
        assert_eq!(table, "actors");
        assert_eq!(row.values[0], Value::from("Alice"));
        assert!(d.fact(FactId(99)).is_none());
    }

    #[test]
    fn interning_shares_repeated_cells() {
        let mut d = db();
        d.insert("movies", vec!["Superman".into(), 2007.into()]);
        d.insert("movies", vec!["Aquaman".into(), 2007.into()]);
        let t = d.table("movies").unwrap();
        // The shared year decodes from one dictionary slot.
        assert_eq!(t.id_row(0).get(1), t.id_row(1).get(1));
        // 3 distinct values: two titles + one year.
        assert_eq!(d.dict().len(), 3);
        assert_eq!(d.cell("movies", 1, 0), Some(&Value::from("Aquaman")));
        assert_eq!(d.cell("movies", 2, 0), None);
        assert_eq!(d.cell("movies", 0, 5), None);
        assert_eq!(d.cell("nope", 0, 0), None);
        let titles: Vec<Value> = d
            .decoded_rows("movies")
            .map(|r| r.values[0].clone())
            .collect();
        assert_eq!(
            titles,
            vec![Value::from("Superman"), Value::from("Aquaman")]
        );
    }

    #[test]
    fn catalog_reflects_tables() {
        let d = db();
        let c = d.catalog();
        assert_eq!(c.len(), 2);
        assert!(c.table("movies").is_some());
        assert_eq!(d.table_names(), vec!["actors", "movies"]);
    }

    #[test]
    #[should_panic(expected = "no such table")]
    fn insert_into_missing_table_panics() {
        let mut d = db();
        d.insert("companies", vec!["Universal".into()]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut d = db();
        d.insert("movies", vec![2007.into(), "Superman".into()]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut d = db();
        d.insert("movies", vec!["x".into()]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_panics() {
        let mut d = db();
        d.create_table(TableSchema::new("movies", &[("x", ColType::Int)]));
    }
}
