//! Logical representation of SPJU queries.
//!
//! DBShap queries are unions of conjunctive Select-Project-Join blocks (the
//! shape `SELECT [DISTINCT] cols FROM t1, …, tn WHERE conj [UNION …]`), so the
//! representation here is a normal form rather than a general operator tree:
//! a [`Query`] is a union of [`SpjBlock`]s, each holding its table references,
//! equi-join conditions, selection predicates and projection list.

use crate::value::Value;
use std::fmt;

/// A (possibly aliased) column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    /// Table alias the column is resolved against.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Comparison operators allowed in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two values.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A selection predicate `σ` over a single column.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Selection {
    /// `col op literal`.
    Cmp {
        /// The constrained column.
        col: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        lit: Value,
    },
    /// `col LIKE 'prefix%'` — the only LIKE pattern the DBShap fragment uses.
    StartsWith {
        /// The constrained column.
        col: ColRef,
        /// Required string prefix.
        prefix: String,
    },
}

impl Selection {
    /// The column the predicate constrains.
    pub fn col(&self) -> &ColRef {
        match self {
            Selection::Cmp { col, .. } | Selection::StartsWith { col, .. } => col,
        }
    }

    /// Evaluate the predicate against a cell value.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Selection::Cmp { op, lit, .. } => op.eval(v, lit),
            Selection::StartsWith { prefix, .. } => {
                v.as_str().is_some_and(|s| s.starts_with(prefix.as_str()))
            }
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::Cmp { col, op, lit } => write!(f, "{col} {op} {}", lit.to_sql_literal()),
            Selection::StartsWith { col, prefix } => write!(f, "{col} LIKE '{prefix}%'"),
        }
    }
}

/// An equi-join condition `left = right` between two columns.
///
/// Stored in canonical orientation (`left <= right` lexicographically) so that
/// syntactic query comparison treats `a.x = b.y` and `b.y = a.x` as equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinCond {
    /// Lexicographically smaller side.
    pub left: ColRef,
    /// Lexicographically larger side.
    pub right: ColRef,
}

impl JoinCond {
    /// Construct a canonically oriented join condition.
    pub fn new(a: ColRef, b: ColRef) -> Self {
        if a <= b {
            JoinCond { left: a, right: b }
        } else {
            JoinCond { left: b, right: a }
        }
    }
}

impl fmt::Display for JoinCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A table mention in a `FROM` clause.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableRef {
    /// Underlying relation name.
    pub table: String,
    /// Alias used by column references (equals `table` when unaliased).
    pub alias: String,
}

impl TableRef {
    /// An unaliased table reference.
    pub fn plain(table: impl Into<String>) -> Self {
        let table = table.into();
        TableRef {
            alias: table.clone(),
            table,
        }
    }

    /// An aliased table reference.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }
}

/// One conjunctive Select-Project-Join block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpjBlock {
    /// Tables joined by the block.
    pub tables: Vec<TableRef>,
    /// Equi-join conditions (conjunction).
    pub joins: Vec<JoinCond>,
    /// Selection predicates (conjunction).
    pub selections: Vec<Selection>,
    /// Projected columns, in output order.
    pub projection: Vec<ColRef>,
    /// Whether duplicate output tuples are merged (`SELECT DISTINCT`).
    pub distinct: bool,
}

impl SpjBlock {
    /// Resolve an alias to its underlying table name.
    pub fn table_of_alias(&self, alias: &str) -> Option<&str> {
        self.tables
            .iter()
            .find(|t| t.alias == alias)
            .map(|t| t.table.as_str())
    }

    /// Number of tables joined — the paper's query-complexity measure.
    pub fn join_width(&self) -> usize {
        self.tables.len()
    }
}

/// An SPJU query: a union of SPJ blocks.
///
/// Invariant (checked by the parser and generators, relied on by evaluation):
/// all blocks project the same arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The union's branches; a plain SPJ query has exactly one.
    pub blocks: Vec<SpjBlock>,
}

impl Query {
    /// Wrap a single block as a query.
    pub fn single(block: SpjBlock) -> Self {
        Query {
            blocks: vec![block],
        }
    }

    /// The paper's query-complexity measure: the maximum number of tables
    /// joined by any branch.
    pub fn join_width(&self) -> usize {
        self.blocks
            .iter()
            .map(SpjBlock::join_width)
            .max()
            .unwrap_or(0)
    }

    /// Output arity (from the first block).
    pub fn arity(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.projection.len())
    }

    /// Whether this query is a union of more than one block.
    pub fn is_union(&self) -> bool {
        self.blocks.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(t: &str, c: &str) -> ColRef {
        ColRef::new(t, c)
    }

    #[test]
    fn cmp_op_eval() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
    }

    #[test]
    fn selection_matches() {
        let s = Selection::Cmp {
            col: cr("movies", "year"),
            op: CmpOp::Eq,
            lit: Value::Int(2007),
        };
        assert!(s.matches(&Value::Int(2007)));
        assert!(!s.matches(&Value::Int(2008)));
        let p = Selection::StartsWith {
            col: cr("actors", "name"),
            prefix: "B".into(),
        };
        assert!(p.matches(&Value::from("Bob")));
        assert!(!p.matches(&Value::from("Alice")));
        assert!(!p.matches(&Value::Int(3)));
        assert_eq!(p.col(), &cr("actors", "name"));
    }

    #[test]
    fn join_cond_is_canonical() {
        let j1 = JoinCond::new(cr("b", "y"), cr("a", "x"));
        let j2 = JoinCond::new(cr("a", "x"), cr("b", "y"));
        assert_eq!(j1, j2);
        assert_eq!(j1.left, cr("a", "x"));
    }

    #[test]
    fn query_shape_helpers() {
        let block = SpjBlock {
            tables: vec![TableRef::plain("movies"), TableRef::plain("roles")],
            joins: vec![JoinCond::new(cr("movies", "title"), cr("roles", "movie"))],
            selections: vec![],
            projection: vec![cr("movies", "title")],
            distinct: true,
        };
        assert_eq!(block.table_of_alias("roles"), Some("roles"));
        assert_eq!(block.table_of_alias("zzz"), None);
        let q = Query::single(block);
        assert_eq!(q.join_width(), 2);
        assert_eq!(q.arity(), 1);
        assert!(!q.is_union());
    }

    #[test]
    fn display_formats() {
        assert_eq!(cr("movies", "year").to_string(), "movies.year");
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        let s = Selection::Cmp {
            col: cr("m", "y"),
            op: CmpOp::Gt,
            lit: Value::Int(2010),
        };
        assert_eq!(s.to_string(), "m.y > 2010");
        let p = Selection::StartsWith {
            col: cr("a", "name"),
            prefix: "B".into(),
        };
        assert_eq!(p.to_string(), "a.name LIKE 'B%'");
    }
}
