//! Typed scalar values stored in database cells.
//!
//! The SPJU fragment used by DBShap only needs integers and strings (dates and
//! floats in the original datasets are represented as integers / strings by the
//! generators), so [`Value`] is deliberately small. Values are totally ordered
//! and hashable so they can serve as join keys and set members.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "INT"),
            ColType::Str => write!(f, "TEXT"),
        }
    }
}

/// A scalar value held in a database cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The [`ColType`] this value inhabits.
    pub fn col_type(&self) -> ColType {
        match self {
            Value::Int(_) => ColType::Int,
            Value::Str(_) => ColType::Str,
        }
    }

    /// Borrow the string contents, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Extract the integer, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Render the value as a SQL literal (strings are single-quoted with
    /// embedded quotes doubled).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: integers sort before strings; within a type, the natural
    /// order applies. Cross-type comparisons only arise in malformed queries;
    /// ordering them deterministically keeps sort-based operators total.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A dictionary-interned value identifier.
///
/// Ids are assigned densely by a [`crate::dict::ValueDict`] in first-seen
/// order. Two cells of the same database carry equal ids **iff** they carry
/// equal [`Value`]s, so equality joins, group-by keys and duplicate
/// elimination are plain `u32` comparisons.
///
/// The derived `Ord` follows interning order, **not** value order — use
/// [`crate::dict::ValueDict::cmp_rows`] (or decode first) wherever the
/// value-sorted order of query outputs matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index into the owning dictionary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_type_of_values() {
        assert_eq!(Value::Int(3).col_type(), ColType::Int);
        assert_eq!(Value::from("abc").col_type(), ColType::Str);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
    }

    #[test]
    fn ordering_across_types_is_total() {
        assert!(Value::Int(999) < Value::from("a"));
        assert!(Value::from("a") > Value::Int(999));
        assert_eq!(Value::Int(5).cmp(&Value::Int(5)), Ordering::Equal);
    }

    #[test]
    fn sql_literal_rendering() {
        assert_eq!(Value::Int(-4).to_sql_literal(), "-4");
        assert_eq!(Value::from("USA").to_sql_literal(), "'USA'");
        assert_eq!(Value::from("O'Hara").to_sql_literal(), "'O''Hara'");
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Int(12).to_string(), "12");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(ColType::Int.to_string(), "INT");
        assert_eq!(ColType::Str.to_string(), "TEXT");
    }
}
