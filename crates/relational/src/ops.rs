//! Operation-set extraction for syntax-based query similarity.
//!
//! Following the paper's §2.3 (after [Kul et al.]), a query is represented as
//! the set of its projection, selection and equi-join operations; two
//! operations are equal iff they are of the same kind and have the same
//! features. Aliases are resolved to underlying relation names so that
//! syntactic similarity compares relations, not surface aliases.

use crate::algebra::{Query, Selection, SpjBlock};
use std::collections::BTreeSet;
use std::fmt;

/// A single relational operation of a query, in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// `Π_{R.C}` — projection onto relation `table`, column `column`.
    Projection {
        /// Relation name.
        table: String,
        /// Column name.
        column: String,
    },
    /// `σ_{R.C φ}` — selection on a relation column with a rendered condition
    /// such as `= 2007` or `LIKE 'B%'`.
    Selection {
        /// Relation name.
        table: String,
        /// Column name.
        column: String,
        /// Canonical rendering of the predicate applied to the column.
        cond: String,
    },
    /// `⋈_{R1.C1 = R2.C2}` — equi-join; sides stored in lexicographic order.
    Join {
        /// Lexicographically smaller `(relation, column)` side.
        left: (String, String),
        /// Lexicographically larger `(relation, column)` side.
        right: (String, String),
    },
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Projection { table, column } => write!(f, "Π[{table}.{column}]"),
            Operation::Selection {
                table,
                column,
                cond,
            } => {
                write!(f, "σ[{table}.{column} {cond}]")
            }
            Operation::Join { left, right } => {
                write!(f, "⋈[{}.{} = {}.{}]", left.0, left.1, right.0, right.1)
            }
        }
    }
}

/// Extract the canonical operation set of a query (union over all blocks).
pub fn operations(q: &Query) -> BTreeSet<Operation> {
    let mut ops = BTreeSet::new();
    for b in &q.blocks {
        block_operations(b, &mut ops);
    }
    ops
}

fn block_operations(b: &SpjBlock, ops: &mut BTreeSet<Operation>) {
    let resolve = |alias: &str| -> String { b.table_of_alias(alias).unwrap_or(alias).to_owned() };
    for c in &b.projection {
        ops.insert(Operation::Projection {
            table: resolve(&c.table),
            column: c.column.clone(),
        });
    }
    for s in &b.selections {
        let (col, cond) = match s {
            Selection::Cmp { col, op, lit } => (col, format!("{op} {}", lit.to_sql_literal())),
            Selection::StartsWith { col, prefix } => (col, format!("LIKE '{prefix}%'")),
        };
        ops.insert(Operation::Selection {
            table: resolve(&col.table),
            column: col.column.clone(),
            cond,
        });
    }
    for j in &b.joins {
        let a = (resolve(&j.left.table), j.left.column.clone());
        let bb = (resolve(&j.right.table), j.right.column.clone());
        let (left, right) = if a <= bb { (a, bb) } else { (bb, a) };
        ops.insert(Operation::Join { left, right });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_query;

    #[test]
    fn running_example_operation_count() {
        // q_inf from the paper: 1 projection + 3 joins + 2 selections.
        let q = parse_query(
            "SELECT DISTINCT actors.name FROM movies, actors, companies, roles \
             WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
             movies.company = companies.name AND companies.country = 'USA' AND \
             movies.year = 2007",
        )
        .unwrap();
        assert_eq!(operations(&q).len(), 6);
    }

    #[test]
    fn join_orientation_does_not_matter() {
        let a = parse_query("SELECT a.x FROM a, b WHERE a.x = b.y").unwrap();
        let b = parse_query("SELECT a.x FROM a, b WHERE b.y = a.x").unwrap();
        assert_eq!(operations(&a), operations(&b));
    }

    #[test]
    fn aliases_resolve_to_relations() {
        let q1 = parse_query("SELECT m.title FROM movies m WHERE m.year = 2007").unwrap();
        let q2 = parse_query("SELECT movies.title FROM movies WHERE movies.year = 2007").unwrap();
        assert_eq!(operations(&q1), operations(&q2));
    }

    #[test]
    fn distinct_does_not_change_operations() {
        let q1 = parse_query("SELECT DISTINCT a.x FROM a").unwrap();
        let q2 = parse_query("SELECT a.x FROM a").unwrap();
        assert_eq!(operations(&q1), operations(&q2));
    }

    #[test]
    fn union_blocks_merge() {
        let q =
            parse_query("SELECT a.x FROM a WHERE a.y = 1 UNION SELECT a.x FROM a WHERE a.y = 2")
                .unwrap();
        // Shared projection + two distinct selections.
        assert_eq!(operations(&q).len(), 3);
    }

    #[test]
    fn selection_conditions_distinguish_operations() {
        let q1 = parse_query("SELECT a.x FROM a WHERE a.y = 1").unwrap();
        let q2 = parse_query("SELECT a.x FROM a WHERE a.y = 2").unwrap();
        let o1 = operations(&q1);
        let o2 = operations(&q2);
        assert_eq!(o1.intersection(&o2).count(), 1); // only the projection
    }

    #[test]
    fn display_forms() {
        let q = parse_query("SELECT a.x FROM a, b WHERE a.x = b.y AND a.z LIKE 'B%'").unwrap();
        let rendered: Vec<String> = operations(&q).iter().map(ToString::to_string).collect();
        assert!(rendered.iter().any(|s| s.starts_with("Π[")));
        assert!(rendered.iter().any(|s| s.starts_with("σ[")));
        assert!(rendered.iter().any(|s| s.starts_with("⋈[")));
    }
}
