//! # ls-relational
//!
//! An in-memory relational engine for the SPJU (Select-Project-Join-Union)
//! fragment, with fact-level provenance annotations.
//!
//! This crate is the data substrate of the LearnShapley reproduction: it
//! provides typed values, schemas, annotated tables, a SQL-subset parser and
//! printer, a canonical logical representation of SPJU queries, a
//! provenance-tracking evaluator (output tuples carry their monotone-DNF
//! Boolean provenance), and operation-set extraction used by syntax-based
//! query similarity.
//!
//! ## Quick example
//!
//! ```
//! use ls_relational::{Database, TableSchema, ColType, parse_query, evaluate};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new(
//!     "movies",
//!     &[("title", ColType::Str), ("year", ColType::Int)],
//! ));
//! db.insert("movies", vec!["Superman".into(), 2007.into()]);
//! db.insert("movies", vec!["Aquaman".into(), 2006.into()]);
//!
//! let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 2007").unwrap();
//! let result = evaluate(&db, &q).unwrap();
//! assert_eq!(result.len(), 1);
//! assert_eq!(result.tuples[0].value_string(), "(Superman)");
//! // Each output tuple knows exactly which input facts derived it:
//! assert_eq!(result.tuples[0].lineage().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod arena;
pub mod database;
pub mod dict;
pub mod eval;
pub mod fact;
mod hash;
pub mod ops;
pub mod results;
pub mod row;
pub mod schema;
pub mod semiring;
pub mod sql;
pub mod table;
pub mod validate;
pub mod value;

pub use algebra::{CmpOp, ColRef, JoinCond, Query, Selection, SpjBlock, TableRef};
pub use arena::{LineageArena, MonoRef};
pub use database::Database;
pub use dict::ValueDict;
pub use eval::{evaluate_with, EvalError};
pub use fact::{minimize_dnf, FactId, Monomial};
pub use ops::{operations, Operation};
pub use results::{
    evaluate, evaluate_interned, InternedResult, InternedTuple, OutputTuple, QueryResult,
};
pub use row::IdRow;
pub use schema::{Catalog, Column, TableSchema};
pub use semiring::{Counting, DnfTag, MonotoneDnf, Probabilistic, Provenance, TopKClauses};
pub use sql::parser::{parse_query, ParseError};
pub use sql::printer::to_sql;
pub use table::{Row, Table};
pub use validate::{validate, validate_strict, ValidateError};
pub use value::{ColType, Value, ValueId};
