//! Fact identifiers — the provenance annotations attached to input tuples.
//!
//! Following the convention of the LearnShapley paper (and [Livshits et al.]),
//! *facts* are tuples of the input database and *tuples* are rows of a query
//! answer. Every fact carries a database-wide unique [`FactId`]; Boolean
//! provenance expressions are built over these identifiers.

use std::fmt;
use std::sync::Arc;

/// A database-wide unique identifier of an input fact.
///
/// `FactId`s are dense: a database with `n` facts uses ids `0..n`, which lets
/// downstream code (Shapley vectors, seen-fact bitmaps) index arrays directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u32);

impl FactId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A conjunctive provenance monomial: the set of facts jointly used by one
/// derivation of an output tuple.
///
/// Invariant: fact ids are sorted and deduplicated (idempotence of `∧`).
///
/// The fact set is held behind an `Arc`, so cloning a monomial — the dominant
/// operation when provenance flows from the evaluator into DNFs, conditioning
/// and component splitting — is a reference-count bump that shares the
/// underlying slice instead of deep-copying it. Monomials decoded from the
/// same [`crate::arena::LineageArena`] entry share one allocation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Monomial {
    facts: Arc<[FactId]>,
}

impl Default for Monomial {
    fn default() -> Self {
        Monomial::one()
    }
}

impl Monomial {
    /// The empty monomial (`true`): a derivation using no facts.
    ///
    /// Shares one static allocation across all call sites.
    pub fn one() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[FactId]>> = std::sync::OnceLock::new();
        Monomial {
            facts: Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new()))),
        }
    }

    /// A monomial over a single fact.
    pub fn of(f: FactId) -> Self {
        Monomial {
            facts: Arc::from(vec![f]),
        }
    }

    /// Build from an arbitrary list of fact ids (sorted and deduplicated).
    pub fn from_facts(mut facts: Vec<FactId>) -> Self {
        facts.sort_unstable();
        facts.dedup();
        Monomial {
            facts: Arc::from(facts),
        }
    }

    /// Build from a slice already sorted ascending with no duplicates.
    ///
    /// This is the zero-normalization path used when decoding interned
    /// arena monomials, whose invariant matches by construction.
    pub fn from_sorted_facts(facts: &[FactId]) -> Self {
        debug_assert!(facts.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        if facts.is_empty() {
            return Monomial::one();
        }
        Monomial {
            facts: Arc::from(facts),
        }
    }

    /// The facts of this monomial, sorted ascending.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of distinct facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether this is the empty (`true`) monomial.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Whether the monomial mentions `f`.
    pub fn contains(&self, f: FactId) -> bool {
        self.facts.binary_search(&f).is_ok()
    }

    /// Conjunction of two monomials (sorted merge with dedup).
    pub fn and(&self, other: &Monomial) -> Monomial {
        // `x ∧ ⊤ = x` and `x ∧ x = x` share the existing allocation.
        if self.facts.is_empty() || self.facts == other.facts {
            return other.clone();
        }
        if other.facts.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.facts.len() + other.facts.len());
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            match self.facts[i].cmp(&other.facts[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.facts[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.facts[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.facts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.facts[i..]);
        out.extend_from_slice(&other.facts[j..]);
        Monomial {
            facts: Arc::from(out),
        }
    }

    /// Whether every fact of `self` also appears in `other`
    /// (i.e. `other ⊨ self`, so `self` absorbs `other` in a DNF).
    pub fn subsumes(&self, other: &Monomial) -> bool {
        if self.facts.len() > other.facts.len() {
            return false;
        }
        let mut j = 0;
        for f in self.facts.iter() {
            while j < other.facts.len() && other.facts[j] < *f {
                j += 1;
            }
            if j >= other.facts.len() || other.facts[j] != *f {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// Remove subsumed monomials (DNF absorption: `m ∨ (m ∧ x) = m`) and
/// duplicates. The result is sorted by (length, content) for determinism.
///
/// After the sort + dedup, a monomial can only be absorbed by a *strictly
/// shorter* kept monomial (a same-length subsumer would have to be equal, and
/// equals are gone), so absorption scans stop at the current length boundary
/// instead of re-checking every kept monomial.
pub fn minimize_dnf(mut monos: Vec<Monomial>) -> Vec<Monomial> {
    monos.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    monos.dedup();
    let mut kept: Vec<Monomial> = Vec::with_capacity(monos.len());
    let mut cur_len = usize::MAX;
    let mut shorter = 0;
    for m in monos {
        if m.len() != cur_len {
            cur_len = m.len();
            shorter = kept.len();
        }
        if !kept[..shorter].iter().any(|k| k.subsumes(&m)) {
            kept.push(m);
        }
    }
    kept
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.facts.is_empty() {
            return write!(f, "⊤");
        }
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{fact}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u32]) -> Monomial {
        Monomial::from_facts(ids.iter().map(|&i| FactId(i)).collect())
    }

    #[test]
    fn from_facts_sorts_and_dedups() {
        let mono = m(&[3, 1, 3, 2]);
        assert_eq!(mono.facts(), &[FactId(1), FactId(2), FactId(3)]);
        assert_eq!(mono.len(), 3);
    }

    #[test]
    fn and_merges() {
        assert_eq!(m(&[1, 3]).and(&m(&[2, 3, 4])), m(&[1, 2, 3, 4]));
        assert_eq!(Monomial::one().and(&m(&[5])), m(&[5]));
    }

    #[test]
    fn and_is_commutative_and_idempotent() {
        let a = m(&[1, 4, 9]);
        let b = m(&[2, 4]);
        assert_eq!(a.and(&b), b.and(&a));
        assert_eq!(a.and(&a), a);
    }

    #[test]
    fn contains_uses_binary_search() {
        let mono = m(&[10, 20, 30]);
        assert!(mono.contains(FactId(20)));
        assert!(!mono.contains(FactId(25)));
    }

    #[test]
    fn subsumption() {
        assert!(m(&[1, 3]).subsumes(&m(&[1, 2, 3])));
        assert!(!m(&[1, 5]).subsumes(&m(&[1, 2, 3])));
        assert!(Monomial::one().subsumes(&m(&[7])));
        assert!(!m(&[7]).subsumes(&Monomial::one()));
        assert!(m(&[7]).subsumes(&m(&[7])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::one().to_string(), "⊤");
        assert_eq!(m(&[1, 2]).to_string(), "f1∧f2");
        assert_eq!(FactId(9).to_string(), "f9");
    }

    #[test]
    fn minimize_dnf_absorption() {
        let out = minimize_dnf(vec![m(&[1, 2, 3]), m(&[1, 2]), m(&[4]), m(&[1, 2])]);
        assert_eq!(out, vec![m(&[4]), m(&[1, 2])]);
    }

    #[test]
    fn minimize_dnf_pathological_same_length_plateau() {
        // 1000 monomials dominated by one same-length plateau: 600 distinct
        // pairs that cannot absorb each other, 380 triples absorbed by some
        // pair, and 20 triples that survive. The length-boundary absorption
        // scan must agree with the naive all-kept scan.
        let mut monos: Vec<Monomial> = Vec::new();
        for i in 0..600u32 {
            monos.push(m(&[2 * i, 2 * i + 1]));
        }
        for i in 0..380u32 {
            // Superset of pair i — absorbed.
            monos.push(m(&[2 * i, 2 * i + 1, 5000 + i]));
        }
        for i in 0..20u32 {
            // Fresh facts only — kept.
            monos.push(m(&[6000 + 3 * i, 6001 + 3 * i, 6002 + 3 * i]));
        }
        assert_eq!(monos.len(), 1000);

        // Naive quadratic reference: scan every kept monomial.
        let naive = {
            let mut ms = monos.clone();
            ms.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            ms.dedup();
            let mut kept: Vec<Monomial> = Vec::new();
            for mm in ms {
                if !kept.iter().any(|k| k.subsumes(&mm)) {
                    kept.push(mm);
                }
            }
            kept
        };

        let out = minimize_dnf(monos);
        assert_eq!(out.len(), 620);
        assert_eq!(out, naive);
    }
}
