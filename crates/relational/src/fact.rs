//! Fact identifiers — the provenance annotations attached to input tuples.
//!
//! Following the convention of the LearnShapley paper (and [Livshits et al.]),
//! *facts* are tuples of the input database and *tuples* are rows of a query
//! answer. Every fact carries a database-wide unique [`FactId`]; Boolean
//! provenance expressions are built over these identifiers.

use std::fmt;

/// A database-wide unique identifier of an input fact.
///
/// `FactId`s are dense: a database with `n` facts uses ids `0..n`, which lets
/// downstream code (Shapley vectors, seen-fact bitmaps) index arrays directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u32);

impl FactId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A conjunctive provenance monomial: the set of facts jointly used by one
/// derivation of an output tuple.
///
/// Invariant: fact ids are sorted and deduplicated (idempotence of `∧`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    facts: Vec<FactId>,
}

impl Monomial {
    /// The empty monomial (`true`): a derivation using no facts.
    pub fn one() -> Self {
        Monomial { facts: Vec::new() }
    }

    /// A monomial over a single fact.
    pub fn of(f: FactId) -> Self {
        Monomial { facts: vec![f] }
    }

    /// Build from an arbitrary list of fact ids (sorted and deduplicated).
    pub fn from_facts(mut facts: Vec<FactId>) -> Self {
        facts.sort_unstable();
        facts.dedup();
        Monomial { facts }
    }

    /// The facts of this monomial, sorted ascending.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of distinct facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether this is the empty (`true`) monomial.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Whether the monomial mentions `f`.
    pub fn contains(&self, f: FactId) -> bool {
        self.facts.binary_search(&f).is_ok()
    }

    /// Conjunction of two monomials (sorted merge with dedup).
    pub fn and(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.facts.len() + other.facts.len());
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            match self.facts[i].cmp(&other.facts[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.facts[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.facts[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.facts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.facts[i..]);
        out.extend_from_slice(&other.facts[j..]);
        Monomial { facts: out }
    }

    /// Whether every fact of `self` also appears in `other`
    /// (i.e. `other ⊨ self`, so `self` absorbs `other` in a DNF).
    pub fn subsumes(&self, other: &Monomial) -> bool {
        if self.facts.len() > other.facts.len() {
            return false;
        }
        let mut j = 0;
        for f in &self.facts {
            while j < other.facts.len() && other.facts[j] < *f {
                j += 1;
            }
            if j >= other.facts.len() || other.facts[j] != *f {
                return false;
            }
            j += 1;
        }
        true
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.facts.is_empty() {
            return write!(f, "⊤");
        }
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{fact}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u32]) -> Monomial {
        Monomial::from_facts(ids.iter().map(|&i| FactId(i)).collect())
    }

    #[test]
    fn from_facts_sorts_and_dedups() {
        let mono = m(&[3, 1, 3, 2]);
        assert_eq!(mono.facts(), &[FactId(1), FactId(2), FactId(3)]);
        assert_eq!(mono.len(), 3);
    }

    #[test]
    fn and_merges() {
        assert_eq!(m(&[1, 3]).and(&m(&[2, 3, 4])), m(&[1, 2, 3, 4]));
        assert_eq!(Monomial::one().and(&m(&[5])), m(&[5]));
    }

    #[test]
    fn and_is_commutative_and_idempotent() {
        let a = m(&[1, 4, 9]);
        let b = m(&[2, 4]);
        assert_eq!(a.and(&b), b.and(&a));
        assert_eq!(a.and(&a), a);
    }

    #[test]
    fn contains_uses_binary_search() {
        let mono = m(&[10, 20, 30]);
        assert!(mono.contains(FactId(20)));
        assert!(!mono.contains(FactId(25)));
    }

    #[test]
    fn subsumption() {
        assert!(m(&[1, 3]).subsumes(&m(&[1, 2, 3])));
        assert!(!m(&[1, 5]).subsumes(&m(&[1, 2, 3])));
        assert!(Monomial::one().subsumes(&m(&[7])));
        assert!(!m(&[7]).subsumes(&Monomial::one()));
        assert!(m(&[7]).subsumes(&m(&[7])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Monomial::one().to_string(), "⊤");
        assert_eq!(m(&[1, 2]).to_string(), "f1∧f2");
        assert_eq!(FactId(9).to_string(), "f9");
    }
}
