//! Provenance semirings: the pluggable tag algebra of the evaluator.
//!
//! The evaluator ([`crate::eval::evaluate_with`]) is written once against the
//! [`Provenance`] trait and threads an opaque `Tag` through scans, joins,
//! selections, unions and the final group-by. An instance decides what a tag
//! *is*: a hash-consed monotone-DNF clause set ([`MonotoneDnf`], the default),
//! a natural-number multiplicity ([`Counting`]), a success probability over
//! independent facts ([`Probabilistic`]), or a width-bounded clause set
//! ([`TopKClauses`]). Adding a semiring requires zero changes to the
//! evaluator — implement the trait and instantiate `evaluate_with`.
//!
//! The shape follows Scallop's provenance framework (see the
//! `top_bottom_k_clauses` provenance in SNIPPETS.md): `tagging_fn` lifts an
//! input fact into a tag, `mult`/`add` combine tags along joins and unions,
//! `saturate` is the absorption/normalization hook (monotone-DNF minimization
//! lives here, not in the evaluator), and `recover_fn` lowers a tag into the
//! instance's output domain at the result boundary.

use crate::arena::{LineageArena, MonoRef};
use crate::fact::FactId;
use crate::hash::FxHashMap;

/// A provenance semiring: the algebra the evaluator threads through a query.
///
/// Laws (checked by `tests/semiring_props.rs` up to observational equality —
/// two tags are equivalent when `recover_fn(saturate(·))` agrees):
///
/// * `add` and `mult` are associative; `add` is commutative,
/// * `zero` is the identity of `add` and annihilates under `mult`,
/// * `one` is the identity of `mult`,
/// * `saturate` is idempotent and preserves the recovered value.
///
/// `mult` for the clause-based instances is commutative only up to clause
/// *order*; absorption (`a + a·b = a`) holds for the lattice-like instances
/// (`MonotoneDnf`, `TopKClauses`, `Probabilistic`) but deliberately **not**
/// for [`Counting`], which tracks multiplicity rather than possibility.
///
/// Methods take `&mut self` because instances may own interning state (the
/// [`LineageArena`] behind the clause instances).
pub trait Provenance {
    /// The annotation threaded through evaluation.
    type Tag: Clone + std::fmt::Debug;
    /// What `recover_fn` lowers a tag into at the result boundary.
    type Output;

    /// Instance name for telemetry and bench labels.
    fn name(&self) -> &'static str;

    /// The additive identity (provenance of "no derivation").
    fn zero(&mut self) -> Self::Tag;

    /// The multiplicative identity (provenance of "derived from nothing").
    fn one(&mut self) -> Self::Tag;

    /// Lift an input fact into a tag (Scallop's `tagging_fn`).
    fn tagging_fn(&mut self, f: FactId) -> Self::Tag;

    /// Combine tags of joined rows (alternative use of the same facts).
    fn mult(&mut self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag;

    /// Combine tags of alternative derivations of the same output tuple.
    fn add(&mut self, a: Self::Tag, b: Self::Tag) -> Self::Tag;

    /// Normalize a tag at the result boundary: absorption for DNF instances,
    /// truncation for bounded instances. Default: identity.
    fn saturate(&mut self, t: Self::Tag) -> Self::Tag {
        t
    }

    /// Lower a tag into the output domain.
    fn recover_fn(&self, t: &Self::Tag) -> Self::Output;

    /// Size of a tag for telemetry (clauses in a DNF; 1 for scalar tags).
    fn tag_size(&self, _t: &Self::Tag) -> usize {
        1
    }

    /// Publish instance-level metrics (arena occupancy, truncation counts)
    /// once per evaluation. Called by the evaluator when telemetry is on.
    fn report_metrics(&self) {}
}

/// A monotone-DNF tag: one clause, or a sum of clauses, as refs into the
/// owning instance's [`LineageArena`].
///
/// The single-clause case — the overwhelmingly common one-derivation-per-row
/// path through scans and joins — stays allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnfTag {
    /// A single conjunctive clause.
    Clause(MonoRef),
    /// A disjunction of clauses, in accumulation order until saturated.
    Sum(Vec<MonoRef>),
}

impl DnfTag {
    /// The clauses of this tag, by value.
    fn into_clauses(self) -> Vec<MonoRef> {
        match self {
            DnfTag::Clause(m) => vec![m],
            DnfTag::Sum(v) => v,
        }
    }

    /// The clauses of this tag, as a slice.
    pub fn clauses(&self) -> &[MonoRef] {
        match self {
            DnfTag::Clause(m) => std::slice::from_ref(m),
            DnfTag::Sum(v) => v,
        }
    }
}

/// The default instance: hash-consed monotone-DNF Boolean provenance,
/// bit-identical to the pre-semiring evaluator.
///
/// `mult` is the arena's memoized sorted-merge conjunction, `add` concatenates
/// clause lists in derivation order, and `saturate` runs the arena's
/// absorption minimizer — exactly the `minimize` call the old evaluator made
/// per multi-derivation tuple, now an instance method.
#[derive(Debug, Default)]
pub struct MonotoneDnf {
    arena: LineageArena,
}

impl MonotoneDnf {
    /// A fresh instance with an empty arena.
    pub fn new() -> Self {
        MonotoneDnf {
            arena: LineageArena::new(),
        }
    }

    /// The underlying arena (for decoding clauses of recovered tags).
    pub fn arena(&self) -> &LineageArena {
        &self.arena
    }

    /// Mutable access to the arena (for memoized decoding).
    pub fn arena_mut(&mut self) -> &mut LineageArena {
        &mut self.arena
    }

    /// Consume the instance, yielding its arena.
    pub fn into_arena(self) -> LineageArena {
        self.arena
    }
}

impl Provenance for MonotoneDnf {
    type Tag = DnfTag;
    type Output = Vec<MonoRef>;

    fn name(&self) -> &'static str {
        "monotone-dnf"
    }

    fn zero(&mut self) -> DnfTag {
        DnfTag::Sum(Vec::new())
    }

    fn one(&mut self) -> DnfTag {
        DnfTag::Clause(self.arena.empty())
    }

    fn tagging_fn(&mut self, f: FactId) -> DnfTag {
        DnfTag::Clause(self.arena.singleton(f))
    }

    fn mult(&mut self, a: &DnfTag, b: &DnfTag) -> DnfTag {
        match (a, b) {
            // The evaluator's join path: clause × clause.
            (DnfTag::Clause(x), DnfTag::Clause(y)) => DnfTag::Clause(self.arena.and(*x, *y)),
            // General distribution (a₁+…)·(b₁+…) = Σ aᵢ·bⱼ.
            _ => {
                let mut out = Vec::with_capacity(a.clauses().len() * b.clauses().len());
                for i in 0..a.clauses().len() {
                    for j in 0..b.clauses().len() {
                        let (x, y) = (a.clauses()[i], b.clauses()[j]);
                        out.push(self.arena.and(x, y));
                    }
                }
                DnfTag::Sum(out)
            }
        }
    }

    fn add(&mut self, a: DnfTag, b: DnfTag) -> DnfTag {
        let mut v = a.into_clauses();
        v.extend(b.into_clauses());
        DnfTag::Sum(v)
    }

    fn saturate(&mut self, t: DnfTag) -> DnfTag {
        match t {
            // A lone clause is already minimal — same fast path the old
            // evaluator took for one-derivation tuples.
            DnfTag::Clause(m) => DnfTag::Clause(m),
            DnfTag::Sum(v) => DnfTag::Sum(self.arena.minimize(v)),
        }
    }

    fn recover_fn(&self, t: &DnfTag) -> Vec<MonoRef> {
        t.clauses().to_vec()
    }

    fn tag_size(&self, t: &DnfTag) -> usize {
        t.clauses().len()
    }

    fn report_metrics(&self) {
        ls_obs::counter("provenance.arena.nodes").add(self.arena.interned_count() as u64);
        ls_obs::counter("provenance.arena.fact_slots").add(self.arena.fact_slots() as u64);
    }
}

/// The counting semiring (ℕ, +, ×): each tag is the number of distinct
/// derivations, i.e. bag-semantics multiplicity.
///
/// Arithmetic saturates at `u64::MAX` instead of wrapping, so adversarial
/// joins degrade to a ceiling rather than a wrong small number. This is the
/// one shipped instance where absorption does **not** hold — `a + a·b ≠ a` —
/// because multiplicities are quantities, not possibilities.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counting;

impl Counting {
    /// A fresh instance (stateless).
    pub fn new() -> Self {
        Counting
    }
}

impl Provenance for Counting {
    type Tag = u64;
    type Output = u64;

    fn name(&self) -> &'static str {
        "counting"
    }

    fn zero(&mut self) -> u64 {
        0
    }

    fn one(&mut self) -> u64 {
        1
    }

    fn tagging_fn(&mut self, _f: FactId) -> u64 {
        1
    }

    fn mult(&mut self, a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }

    fn add(&mut self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }

    fn recover_fn(&self, t: &u64) -> u64 {
        *t
    }
}

/// Top-down exact probability over independent facts.
///
/// Tags are monotone-DNF clause sets (delegated to an inner [`MonotoneDnf`]);
/// `recover_fn` computes `P(φ)` by Shannon expansion on the most frequent
/// fact, with a product fast path for single clauses. Exact inference is
/// #P-hard in general — worst case exponential in lineage width — which is
/// precisely the cost profile [`TopKClauses`] exists to bound.
#[derive(Debug, Default)]
pub struct Probabilistic {
    dnf: MonotoneDnf,
    probs: FxHashMap<FactId, f64>,
    default_p: f64,
}

impl Probabilistic {
    /// An instance where every fact holds with probability `default_p`.
    pub fn new(default_p: f64) -> Self {
        Probabilistic {
            dnf: MonotoneDnf::new(),
            probs: FxHashMap::default(),
            default_p,
        }
    }

    /// Override the probability of one fact.
    pub fn set_prob(&mut self, f: FactId, p: f64) {
        self.probs.insert(f, p);
    }

    /// The probability of fact `f`.
    pub fn fact_prob(&self, f: FactId) -> f64 {
        self.probs.get(&f).copied().unwrap_or(self.default_p)
    }

    /// The underlying arena.
    pub fn arena(&self) -> &LineageArena {
        self.dnf.arena()
    }

    /// Exact `P(⋁ᵢ ⋀ clauses[i])` by Shannon expansion.
    fn success_prob(&self, clauses: &[Vec<FactId>]) -> f64 {
        if clauses.is_empty() {
            return 0.0;
        }
        if clauses.iter().any(Vec::is_empty) {
            return 1.0;
        }
        if clauses.len() == 1 {
            return clauses[0].iter().map(|&f| self.fact_prob(f)).product();
        }
        // Condition on the most frequent fact (smallest id on ties, for
        // determinism): P(φ) = p·P(φ|f) + (1−p)·P(φ|¬f).
        let mut counts: FxHashMap<FactId, u32> = FxHashMap::default();
        for c in clauses {
            for &f in c {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        let pivot = counts
            .iter()
            .map(|(&f, &n)| (n, std::cmp::Reverse(f)))
            .max()
            .map(|(_, std::cmp::Reverse(f))| f)
            .expect("non-empty clauses have facts");
        let p = self.fact_prob(pivot);
        let pos: Vec<Vec<FactId>> = clauses
            .iter()
            .map(|c| c.iter().copied().filter(|&f| f != pivot).collect())
            .collect();
        let neg: Vec<Vec<FactId>> = clauses
            .iter()
            .filter(|c| !c.contains(&pivot))
            .cloned()
            .collect();
        p * self.success_prob(&pos) + (1.0 - p) * self.success_prob(&neg)
    }
}

impl Provenance for Probabilistic {
    type Tag = DnfTag;
    type Output = f64;

    fn name(&self) -> &'static str {
        "probabilistic"
    }

    fn zero(&mut self) -> DnfTag {
        self.dnf.zero()
    }

    fn one(&mut self) -> DnfTag {
        self.dnf.one()
    }

    fn tagging_fn(&mut self, f: FactId) -> DnfTag {
        self.dnf.tagging_fn(f)
    }

    fn mult(&mut self, a: &DnfTag, b: &DnfTag) -> DnfTag {
        self.dnf.mult(a, b)
    }

    fn add(&mut self, a: DnfTag, b: DnfTag) -> DnfTag {
        self.dnf.add(a, b)
    }

    fn saturate(&mut self, t: DnfTag) -> DnfTag {
        self.dnf.saturate(t)
    }

    fn recover_fn(&self, t: &DnfTag) -> f64 {
        let clauses: Vec<Vec<FactId>> = t
            .clauses()
            .iter()
            .map(|&r| self.dnf.arena().facts(r).to_vec())
            .collect();
        self.success_prob(&clauses)
    }

    fn tag_size(&self, t: &DnfTag) -> usize {
        self.dnf.tag_size(t)
    }

    fn report_metrics(&self) {
        self.dnf.report_metrics();
    }
}

/// Scallop-style bounded clause set: monotone DNF capped at `k` clauses.
///
/// `add` and `saturate` minimize and keep the `k` smallest clauses in the
/// arena's `(length, content)` order, so lineage width — and with it exact
/// Shapley compilation cost and serve tail latency — is bounded on
/// adversarially wide joins. Truncation is confluent: an absorber sorts at
/// or before its absorbee, so minimization work is never lost to truncation,
/// and a truncated clause is preceded by `k` strictly smaller survivors that
/// would outrank it in any later combination.
#[derive(Debug)]
pub struct TopKClauses {
    dnf: MonotoneDnf,
    k: usize,
    truncations: u64,
    truncated_clauses: u64,
}

impl TopKClauses {
    /// An instance keeping at most `k ≥ 1` clauses per tag.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "TopKClauses requires k >= 1");
        TopKClauses {
            dnf: MonotoneDnf::new(),
            k,
            truncations: 0,
            truncated_clauses: 0,
        }
    }

    /// The clause bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// How many tags have been truncated so far.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// How many clauses truncation has dropped so far.
    pub fn truncated_clauses(&self) -> u64 {
        self.truncated_clauses
    }

    /// The underlying arena.
    pub fn arena(&self) -> &LineageArena {
        self.dnf.arena()
    }

    /// Mutable access to the arena (for memoized decoding).
    pub fn arena_mut(&mut self) -> &mut LineageArena {
        self.dnf.arena_mut()
    }

    /// Minimize, then keep the `k` smallest clauses.
    fn prune(&mut self, v: Vec<MonoRef>) -> Vec<MonoRef> {
        let mut v = self.dnf.arena().minimize(v);
        if v.len() > self.k {
            self.truncations += 1;
            self.truncated_clauses += (v.len() - self.k) as u64;
            v.truncate(self.k);
        }
        v
    }
}

impl Provenance for TopKClauses {
    type Tag = DnfTag;
    type Output = Vec<MonoRef>;

    fn name(&self) -> &'static str {
        "top-k-clauses"
    }

    fn zero(&mut self) -> DnfTag {
        self.dnf.zero()
    }

    fn one(&mut self) -> DnfTag {
        self.dnf.one()
    }

    fn tagging_fn(&mut self, f: FactId) -> DnfTag {
        self.dnf.tagging_fn(f)
    }

    fn mult(&mut self, a: &DnfTag, b: &DnfTag) -> DnfTag {
        self.dnf.mult(a, b)
    }

    fn add(&mut self, a: DnfTag, b: DnfTag) -> DnfTag {
        let t = self.dnf.add(a, b);
        // Prune eagerly so accumulation over a wide group-by holds O(k)
        // clauses instead of materializing the full disjunction.
        match t {
            DnfTag::Sum(v) if v.len() > self.k => DnfTag::Sum(self.prune(v)),
            t => t,
        }
    }

    fn saturate(&mut self, t: DnfTag) -> DnfTag {
        match t {
            DnfTag::Clause(m) => DnfTag::Clause(m),
            DnfTag::Sum(v) => DnfTag::Sum(self.prune(v)),
        }
    }

    fn recover_fn(&self, t: &DnfTag) -> Vec<MonoRef> {
        t.clauses().to_vec()
    }

    fn tag_size(&self, t: &DnfTag) -> usize {
        self.dnf.tag_size(t)
    }

    fn report_metrics(&self) {
        self.dnf.report_metrics();
        ls_obs::counter("provenance.topk.truncations").add(self.truncations);
        ls_obs::counter("provenance.topk.truncated_clauses").add(self.truncated_clauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(ids: &[u32]) -> Vec<FactId> {
        ids.iter().copied().map(FactId).collect()
    }

    #[test]
    fn monotone_dnf_matches_arena_semantics() {
        let mut p = MonotoneDnf::new();
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let c = p.tagging_fn(FactId(3));
        let ab = p.mult(&a, &b);
        match &ab {
            DnfTag::Clause(r) => assert_eq!(p.arena().facts(*r), fid(&[1, 2]).as_slice()),
            _ => panic!("clause × clause must stay a clause"),
        }
        // (ab + c) saturated: two incomparable clauses survive.
        let sum = p.add(ab.clone(), c.clone());
        let sat = p.saturate(sum);
        let rec = p.recover_fn(&sat);
        let got: Vec<Vec<FactId>> = rec.iter().map(|&r| p.arena().facts(r).to_vec()).collect();
        assert_eq!(got, vec![fid(&[3]), fid(&[1, 2])]);
        // Absorption: ab + a = a.
        let sum2 = p.add(ab, a.clone());
        let sat2 = p.saturate(sum2);
        let rec2 = p.recover_fn(&sat2);
        let got2: Vec<Vec<FactId>> = rec2.iter().map(|&r| p.arena().facts(r).to_vec()).collect();
        assert_eq!(got2, vec![fid(&[1])]);
    }

    #[test]
    fn monotone_dnf_distributes_sums() {
        let mut p = MonotoneDnf::new();
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let c = p.tagging_fn(FactId(3));
        let ab = p.add(a.clone(), b.clone()); // a + b
        let prod = p.mult(&ab, &c); // (a+b)·c = ac + bc
        let sat = p.saturate(prod);
        let got: Vec<Vec<FactId>> = p
            .recover_fn(&sat)
            .iter()
            .map(|&r| p.arena().facts(r).to_vec())
            .collect();
        assert_eq!(got, vec![fid(&[1, 3]), fid(&[2, 3])]);
    }

    #[test]
    fn monotone_dnf_identities() {
        let mut p = MonotoneDnf::new();
        let a = p.tagging_fn(FactId(7));
        let one = p.one();
        let zero = p.zero();
        // a · 1 = a (same clause ref).
        let a1 = p.mult(&a, &one);
        assert_eq!(a1, a);
        // a + 0 saturates to just a.
        let a0 = p.add(a.clone(), zero);
        let sat = p.saturate(a0);
        assert_eq!(p.recover_fn(&sat), p.recover_fn(&a));
    }

    #[test]
    fn counting_is_bag_arithmetic() {
        let mut c = Counting::new();
        let (a, b) = (c.tagging_fn(FactId(0)), c.tagging_fn(FactId(1)));
        let two = c.add(a, b);
        let six = {
            let three = c.add(two, 1);
            c.mult(&three, &2)
        };
        assert_eq!(six, 6);
        assert_eq!(c.recover_fn(&six), 6);
        // Saturating, not wrapping.
        assert_eq!(c.mult(&u64::MAX, &2), u64::MAX);
        assert_eq!(c.add(u64::MAX, 1), u64::MAX);
        assert_eq!(c.zero(), 0);
        assert_eq!(c.one(), 1);
    }

    #[test]
    fn probabilistic_single_clause_is_product() {
        let mut p = Probabilistic::new(0.5);
        p.set_prob(FactId(1), 0.5);
        p.set_prob(FactId(2), 0.4);
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let ab = p.mult(&a, &b);
        assert!((p.recover_fn(&ab) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_independent_clauses() {
        // P(a ∨ b) = 1 − (1−pa)(1−pb) for independent a, b.
        let mut p = Probabilistic::new(0.5);
        p.set_prob(FactId(1), 0.3);
        p.set_prob(FactId(2), 0.6);
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let sum = p.add(a, b);
        let want = 1.0 - 0.7 * 0.4;
        assert!((p.recover_fn(&sum) - want).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_shared_fact_correlation() {
        // φ = (x∧a) ∨ (x∧b): P = px·(1 − (1−pa)(1−pb)).
        let mut p = Probabilistic::new(0.5);
        p.set_prob(FactId(0), 0.9); // x
        p.set_prob(FactId(1), 0.5); // a
        p.set_prob(FactId(2), 0.5); // b
        let x = p.tagging_fn(FactId(0));
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let xa = p.mult(&x, &a);
        let xb = p.mult(&x, &b);
        let sum = p.add(xa, xb);
        let want = 0.9 * (1.0 - 0.25);
        assert!((p.recover_fn(&sum) - want).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_constants() {
        let mut p = Probabilistic::new(0.5);
        let zero = p.zero();
        let one = p.one();
        assert_eq!(p.recover_fn(&zero), 0.0);
        assert_eq!(p.recover_fn(&one), 1.0);
    }

    #[test]
    fn topk_bounds_clause_count() {
        let mut p = TopKClauses::new(2);
        // Five incomparable clauses; only the two smallest survive.
        let mut acc = p.zero();
        for i in 0..5u32 {
            let t = {
                let a = p.tagging_fn(FactId(2 * i));
                let b = p.tagging_fn(FactId(2 * i + 1));
                p.mult(&a, &b)
            };
            acc = p.add(acc, t);
        }
        let sat = p.saturate(acc);
        let rec = p.recover_fn(&sat);
        assert_eq!(rec.len(), 2);
        let got: Vec<Vec<FactId>> = rec.iter().map(|&r| p.arena().facts(r).to_vec()).collect();
        assert_eq!(got, vec![fid(&[0, 1]), fid(&[2, 3])]);
        assert!(p.truncations() >= 1);
        assert!(p.truncated_clauses() >= 3);
    }

    #[test]
    fn topk_never_truncates_an_absorber() {
        let mut p = TopKClauses::new(1);
        // a + a·b + a·c: the absorber `a` is the shortest clause, so k=1
        // keeps exactly the minimal form.
        let a = p.tagging_fn(FactId(1));
        let b = p.tagging_fn(FactId(2));
        let c = p.tagging_fn(FactId(3));
        let ab = p.mult(&a, &b);
        let ac = p.mult(&a, &c);
        let s1 = p.add(ab, ac);
        let s2 = p.add(s1, a.clone());
        let sat = p.saturate(s2);
        let got: Vec<Vec<FactId>> = p
            .recover_fn(&sat)
            .iter()
            .map(|&r| p.arena().facts(r).to_vec())
            .collect();
        assert_eq!(got, vec![fid(&[1])]);
    }

    #[test]
    fn topk_saturate_is_idempotent() {
        let mut p = TopKClauses::new(2);
        let mut acc = p.zero();
        for i in 0..6u32 {
            let t = p.tagging_fn(FactId(i));
            acc = p.add(acc, t);
        }
        let s1 = p.saturate(acc);
        let s2 = p.saturate(s1.clone());
        assert_eq!(p.recover_fn(&s1), p.recover_fn(&s2));
    }
}
