//! Monotone-DNF query results: the decoded and interned views.
//!
//! [`evaluate`] / [`evaluate_interned`] are thin instantiations of the
//! semiring-generic evaluator ([`crate::eval::evaluate_with`]) at the default
//! [`MonotoneDnf`] instance. The evaluator computes, for every output tuple,
//! its monotone-DNF Boolean provenance: one [`Monomial`] per derivation,
//! minimized by absorption. The lineage (the paper's `Lineage(D, q, t)`) is
//! the set of facts appearing in at least one derivation.
//!
//! [`evaluate`] decodes the interned result once at the boundary into the
//! classic [`OutputTuple`] view; [`evaluate_interned`] exposes the raw
//! interned form for consumers (Shapley, similarity) that never need decoded
//! values.

use crate::algebra::Query;
use crate::arena::{LineageArena, MonoRef};
use crate::database::Database;
use crate::eval::{evaluate_with, EvalError};
use crate::fact::{FactId, Monomial};
use crate::row::IdRow;
use crate::semiring::{MonotoneDnf, Provenance};
use crate::value::Value;

/// An output tuple with its provenance, decoded to owned [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputTuple {
    /// Projected values.
    pub values: Vec<Value>,
    /// Minimal DNF provenance: every monomial is one derivation, none is
    /// subsumed by another.
    pub derivations: Vec<Monomial>,
}

impl OutputTuple {
    /// The lineage: all facts appearing in at least one derivation, sorted.
    pub fn lineage(&self) -> Vec<FactId> {
        let mut facts: Vec<FactId> = self
            .derivations
            .iter()
            .flat_map(|m| m.facts().iter().copied())
            .collect();
        facts.sort_unstable();
        facts.dedup();
        facts
    }

    /// Render the projected values as `(v1, v2, …)`.
    pub fn value_string(&self) -> String {
        let parts: Vec<String> = self.values.iter().map(ToString::to_string).collect();
        format!("({})", parts.join(", "))
    }
}

/// An output tuple in interned form: projected value ids plus arena refs to
/// its minimal-DNF derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedTuple {
    /// Projected value ids (decode via the database dictionary).
    pub values: IdRow,
    /// Minimal DNF provenance as refs into the result's [`LineageArena`].
    pub derivations: Vec<MonoRef>,
}

/// The interned half of a query result: tuples as [`IdRow`]s with
/// arena-backed provenance.
///
/// Tuples are in the same (decoded-value-sorted) order as
/// [`QueryResult::tuples`]; `tuples[i]` is the interned form of the `i`-th
/// decoded tuple.
#[derive(Debug, Clone)]
pub struct InternedResult {
    /// The hash-consed fact-set arena all `derivations` refs point into.
    pub arena: LineageArena,
    /// Output tuples in decoded-value-sorted order.
    pub tuples: Vec<InternedTuple>,
}

impl InternedResult {
    /// An empty result with a fresh arena.
    pub fn empty() -> Self {
        InternedResult {
            arena: LineageArena::new(),
            tuples: Vec::new(),
        }
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The interned witness rows (output values only), in result order.
    pub fn witness_ids(&self) -> impl Iterator<Item = &IdRow> {
        self.tuples.iter().map(|t| &t.values)
    }
}

/// The result of evaluating a query: output tuples in deterministic
/// (value-sorted) order, in both decoded and interned form.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output tuples with provenance, sorted by value.
    pub tuples: Vec<OutputTuple>,
    /// The interned form: same tuples as [`IdRow`]s with arena-backed
    /// provenance, for consumers that stay in id space.
    pub interned: InternedResult,
}

/// Results compare by their decoded tuples: the interned side is a cache of
/// the same information (relative to one database) and arenas built by
/// different evaluations may intern in different orders.
impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for QueryResult {}

impl Default for QueryResult {
    fn default() -> Self {
        QueryResult {
            tuples: Vec::new(),
            interned: InternedResult::empty(),
        }
    }
}

impl QueryResult {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Find the tuple with the given values.
    ///
    /// Tuples are value-sorted, so this is a binary search rather than a
    /// linear scan.
    pub fn tuple(&self, values: &[Value]) -> Option<&OutputTuple> {
        self.tuples
            .binary_search_by(|t| t.values.as_slice().cmp(values))
            .ok()
            .map(|i| &self.tuples[i])
    }

    /// The witness set: output values only (for witness-based similarity).
    pub fn witnesses(&self) -> Vec<&[Value]> {
        self.tuples.iter().map(|t| t.values.as_slice()).collect()
    }
}

/// Evaluate an SPJU query with provenance tracking, decoding the interned
/// result into owned [`Value`]s and `Arc`-shared [`Monomial`]s.
pub fn evaluate(db: &Database, q: &Query) -> Result<QueryResult, EvalError> {
    let InternedResult {
        mut arena,
        tuples: interned_tuples,
    } = evaluate_interned(db, q)?;
    let dict = db.dict();
    let tuples: Vec<OutputTuple> = interned_tuples
        .iter()
        .map(|t| OutputTuple {
            values: dict.decode_row(t.values.as_slice()),
            derivations: t.derivations.iter().map(|&r| arena.decode(r)).collect(),
        })
        .collect();
    Ok(QueryResult {
        tuples,
        interned: InternedResult {
            arena,
            tuples: interned_tuples,
        },
    })
}

/// Evaluate an SPJU query entirely in interned space, under the default
/// [`MonotoneDnf`] semiring.
///
/// Output tuples are sorted by their *decoded* values (the same deterministic
/// order [`evaluate`] produces), but values stay as [`IdRow`]s and
/// derivations as arena refs — nothing is decoded.
pub fn evaluate_interned(db: &Database, q: &Query) -> Result<InternedResult, EvalError> {
    let mut prov = MonotoneDnf::new();
    let rows = evaluate_with(db, q, &mut prov)?;
    let tuples: Vec<InternedTuple> = rows
        .into_iter()
        .map(|(values, tag)| InternedTuple {
            derivations: prov.recover_fn(&tag),
            values,
        })
        .collect();
    Ok(InternedResult {
        arena: prov.into_arena(),
        tuples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::semiring::{Counting, Probabilistic, TopKClauses};
    use crate::sql::parser::parse_query;
    use crate::value::ColType;

    /// The running-example movie database from Figure 1 of the paper
    /// (restricted to the columns the examples use).
    pub(crate) fn figure1_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "movies",
            &[
                ("title", ColType::Str),
                ("year", ColType::Int),
                ("company", ColType::Str),
            ],
        ));
        db.create_table(TableSchema::new(
            "actors",
            &[("name", ColType::Str), ("age", ColType::Int)],
        ));
        db.create_table(TableSchema::new(
            "companies",
            &[("name", ColType::Str), ("country", ColType::Str)],
        ));
        db.create_table(TableSchema::new(
            "roles",
            &[("actor", ColType::Str), ("movie", ColType::Str)],
        ));
        // movies: m1..m5
        db.insert(
            "movies",
            vec!["Superman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Batman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Spiderman".into(), 2007.into(), "Warner".into()],
        );
        db.insert(
            "movies",
            vec!["Aquaman".into(), 2006.into(), "Warner".into()],
        );
        db.insert("movies", vec!["Iceman".into(), 2007.into(), "Sony".into()]);
        // actors: a1..a4
        db.insert("actors", vec!["Alice".into(), 45.into()]);
        db.insert("actors", vec!["Bob".into(), 30.into()]);
        db.insert("actors", vec!["Carol".into(), 38.into()]);
        db.insert("actors", vec!["David".into(), 23.into()]);
        // companies: c1..c3
        db.insert("companies", vec!["Universal".into(), "USA".into()]);
        db.insert("companies", vec!["Warner".into(), "USA".into()]);
        db.insert("companies", vec!["Sony".into(), "Japan".into()]);
        // roles: r1..r7
        db.insert("roles", vec!["Alice".into(), "Superman".into()]);
        db.insert("roles", vec!["Alice".into(), "Batman".into()]);
        db.insert("roles", vec!["Alice".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Bob".into(), "Batman".into()]);
        db.insert("roles", vec!["Carol".into(), "Aquaman".into()]);
        db.insert("roles", vec!["David".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Carol".into(), "Iceman".into()]);
        db
    }

    const Q_INF: &str = "SELECT DISTINCT actors.name \
        FROM movies, actors, companies, roles \
        WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
        movies.company = companies.name AND companies.country = 'USA' AND \
        movies.year = 2007";

    #[test]
    fn running_example_output() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let names: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(names, vec!["Alice", "Bob", "David"]);
    }

    #[test]
    fn alice_provenance_has_three_derivations() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let alice = res.tuple(&[Value::from("Alice")]).unwrap();
        // Alice appears via Superman/Universal, Batman/Universal,
        // Spiderman/Warner — three derivations of four facts each.
        assert_eq!(alice.derivations.len(), 3);
        for d in &alice.derivations {
            assert_eq!(d.len(), 4);
        }
        // Lineage: a1, 3 movies, 2 companies, 3 roles = 9 facts.
        assert_eq!(alice.lineage().len(), 9);
    }

    #[test]
    fn interned_result_mirrors_decoded_result() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let interned = evaluate_interned(&db, &q).unwrap();
        assert_eq!(res.interned.len(), res.len());
        assert_eq!(interned.len(), res.len());
        for (it, t) in interned.tuples.iter().zip(&res.tuples) {
            assert_eq!(db.dict().decode_row(it.values.as_slice()), t.values);
            assert_eq!(it.derivations.len(), t.derivations.len());
            for (&r, m) in it.derivations.iter().zip(&t.derivations) {
                assert_eq!(interned.arena.facts(r), m.facts());
            }
        }
        let wits: Vec<&IdRow> = interned.witness_ids().collect();
        assert_eq!(wits.len(), 3);
    }

    #[test]
    fn counting_semiring_counts_derivations() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let mut counting = Counting::new();
        let counts = evaluate_with(&db, &q, &mut counting).unwrap();
        // Same tuples in the same order as the DNF evaluation.
        assert_eq!(counts.len(), res.len());
        for ((values, n), t) in counts.iter().zip(&res.tuples) {
            assert_eq!(db.dict().decode_row(values.as_slice()), t.values);
            // Q_INF produces no duplicate-collapsing joins, so multiplicity
            // equals the number of minimal derivations here.
            assert_eq!(*n, t.derivations.len() as u64);
        }
    }

    #[test]
    fn probabilistic_semiring_on_running_example() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let mut prob = Probabilistic::new(1.0);
        let rows = evaluate_with(&db, &q, &mut prob).unwrap();
        // With every fact certain, every derivable tuple has probability 1.
        assert_eq!(rows.len(), 3);
        for (_, tag) in &rows {
            assert_eq!(prob.recover_fn(tag), 1.0);
        }
        // With facts at p = 0.5, probabilities drop strictly below 1 and stay
        // positive.
        let mut half = Probabilistic::new(0.5);
        let rows = evaluate_with(&db, &q, &mut half).unwrap();
        for (_, tag) in &rows {
            let p = half.recover_fn(tag);
            assert!(p > 0.0 && p < 1.0, "p = {p}");
        }
    }

    #[test]
    fn topk_semiring_bounds_derivations() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let mut topk = TopKClauses::new(2);
        let rows = evaluate_with(&db, &q, &mut topk).unwrap();
        assert_eq!(rows.len(), res.len());
        for ((values, tag), t) in rows.iter().zip(&res.tuples) {
            assert_eq!(db.dict().decode_row(values.as_slice()), t.values);
            let clauses = topk.recover_fn(tag);
            assert!(clauses.len() <= 2);
            assert_eq!(clauses.len(), t.derivations.len().min(2));
        }
        // Alice has three derivations; k = 2 must have truncated.
        assert!(topk.truncations() >= 1);
    }

    #[test]
    fn selection_only_query() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 2007").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 4);
        for t in &res.tuples {
            assert_eq!(t.derivations.len(), 1);
            assert_eq!(t.derivations[0].len(), 1);
        }
    }

    #[test]
    fn selection_on_absent_literal() {
        let db = figure1_db();
        // 'Nolan' is interned nowhere: `=` short-circuits to empty, `<>`
        // passes every row.
        let q =
            parse_query("SELECT movies.title FROM movies WHERE movies.title = 'Nolan'").unwrap();
        assert!(evaluate(&db, &q).unwrap().is_empty());
        let q2 =
            parse_query("SELECT movies.title FROM movies WHERE movies.title <> 'Nolan'").unwrap();
        assert_eq!(evaluate(&db, &q2).unwrap().len(), 5);
    }

    #[test]
    fn union_merges_provenance() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Universal'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        // Superman is in both branches, via the same fact — one derivation.
        let superman = res.tuple(&[Value::from("Superman")]).unwrap();
        assert_eq!(superman.derivations.len(), 1);
        // Aquaman only matches the second branch... no — Aquaman is Warner
        // 2006, so it matches neither. Iceman matches only the first branch.
        assert!(res.tuple(&[Value::from("Iceman")]).is_some());
        assert!(res.tuple(&[Value::from("Aquaman")]).is_none());
    }

    #[test]
    fn union_counts_duplicate_branches() {
        let db = figure1_db();
        // Superman matches both branches: bag multiplicity 2 under Counting,
        // while the DNF view absorbs the duplicate derivation.
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Universal'",
        )
        .unwrap();
        let mut counting = Counting::new();
        let counts = evaluate_with(&db, &q, &mut counting).unwrap();
        let dict = db.dict();
        let superman = counts
            .iter()
            .find(|(v, _)| dict.decode_row(v.as_slice()) == vec![Value::from("Superman")])
            .unwrap();
        assert_eq!(superman.1, 2);
        let iceman = counts
            .iter()
            .find(|(v, _)| dict.decode_row(v.as_slice()) == vec![Value::from("Iceman")])
            .unwrap();
        assert_eq!(iceman.1, 1);
    }

    #[test]
    fn cross_product_fallback() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT companies.name, actors.name FROM companies, actors \
             WHERE companies.country = 'Japan' AND actors.age > 40",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1); // Sony × Alice
        assert_eq!(res.tuples[0].derivations[0].len(), 2);
    }

    #[test]
    fn self_join_with_aliases() {
        let db = figure1_db();
        // Pairs of distinct actors playing in the same movie.
        let q = parse_query(
            "SELECT r1.actor, r2.actor FROM roles r1, roles r2 \
             WHERE r1.movie = r2.movie AND r1.actor < 'Bob' AND r2.actor >= 'Bob'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let pairs: Vec<String> = res.tuples.iter().map(|t| t.value_string()).collect();
        assert_eq!(pairs, vec!["(Alice, Bob)", "(Alice, David)"]);
    }

    #[test]
    fn cyclic_join_conditions_are_applied() {
        let db = figure1_db();
        // Triangle: movies-roles join plus a redundant condition closing a
        // cycle through companies.
        let q = parse_query(
            "SELECT movies.title FROM movies, companies, roles \
             WHERE movies.company = companies.name AND movies.title = roles.movie \
             AND companies.country = 'USA' AND roles.actor = 'Alice' \
             AND companies.name = movies.company",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn empty_result() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 1999").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        assert!(res.witnesses().is_empty());
    }

    #[test]
    fn missing_table_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT directors.name FROM directors").unwrap();
        assert!(evaluate(&db, &q).is_err());
    }

    #[test]
    fn missing_column_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.budget FROM movies").unwrap();
        let err = evaluate(&db, &q).unwrap_err();
        assert!(err.message.contains("budget"));
        let q2 = parse_query("SELECT movies.title FROM movies WHERE movies.budget > 3").unwrap();
        assert!(evaluate(&db, &q2).is_err());
    }

    #[test]
    fn query_over_empty_table() {
        let mut db = Database::new();
        db.create_table(crate::schema::TableSchema::new(
            "empty",
            &[("x", crate::value::ColType::Int)],
        ));
        let q = parse_query("SELECT empty.x FROM empty").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        // Joining a non-empty table with an empty one is also empty.
        let db2 = figure1_db();
        let mut db3 = db2.clone();
        db3.create_table(crate::schema::TableSchema::new(
            "nothing",
            &[("title", crate::value::ColType::Str)],
        ));
        let q = parse_query(
            "SELECT movies.title FROM movies, nothing WHERE movies.title = nothing.title",
        )
        .unwrap();
        assert!(evaluate(&db3, &q).unwrap().is_empty());
    }

    #[test]
    fn duplicate_projection_column() {
        let db = figure1_db();
        let q = parse_query("SELECT actors.name, actors.name FROM actors WHERE actors.age > 40")
            .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res.tuples[0].values[0], res.tuples[0].values[1]);
    }

    #[test]
    fn selection_on_join_column() {
        let db = figure1_db();
        // The join column also carries a selection predicate.
        let q = parse_query(
            "SELECT roles.actor FROM movies, roles \
             WHERE movies.title = roles.movie AND movies.title = 'Batman'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let actors: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(actors, vec!["Alice", "Bob"]);
    }

    #[test]
    fn union_of_three_blocks() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2006 \
             UNION SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Sony'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 5); // all five movies
    }

    #[test]
    fn results_are_value_sorted_and_deterministic() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let r1 = evaluate(&db, &q).unwrap();
        let r2 = evaluate(&db, &q).unwrap();
        assert_eq!(r1, r2);
        let mut sorted = r1.tuples.clone();
        sorted.sort_by(|a, b| a.values.cmp(&b.values));
        assert_eq!(r1.tuples, sorted);
    }

    #[test]
    fn tuple_lookup_uses_sorted_order() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 5);
        for t in &res.tuples {
            assert_eq!(res.tuple(&t.values).unwrap(), t);
        }
        assert!(res.tuple(&[Value::from("Nolan")]).is_none());
        assert!(res.tuple(&[Value::from("")]).is_none());
    }
}
