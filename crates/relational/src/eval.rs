//! Provenance-tracking evaluation of SPJU queries.
//!
//! The evaluator computes, for every output tuple, its monotone-DNF Boolean
//! provenance: one [`Monomial`] per derivation, minimized by absorption. The
//! lineage (the paper's `Lineage(D, q, t)`) is the set of facts appearing in
//! at least one derivation.
//!
//! Execution strategy: per-alias scans with selection pushdown, then greedy
//! hash equi-joins along the join graph (falling back to a cross product for
//! disconnected components), final projection, and grouping of derivations by
//! output values. Union branches are evaluated independently and merged.

use crate::algebra::{ColRef, Query, SpjBlock};
use crate::database::Database;
use crate::fact::{FactId, Monomial};
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An output tuple with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputTuple {
    /// Projected values.
    pub values: Vec<Value>,
    /// Minimal DNF provenance: every monomial is one derivation, none is
    /// subsumed by another.
    pub derivations: Vec<Monomial>,
}

impl OutputTuple {
    /// The lineage: all facts appearing in at least one derivation, sorted.
    pub fn lineage(&self) -> Vec<FactId> {
        let mut facts: Vec<FactId> = self
            .derivations
            .iter()
            .flat_map(|m| m.facts().iter().copied())
            .collect();
        facts.sort_unstable();
        facts.dedup();
        facts
    }

    /// Render the projected values as `(v1, v2, …)`.
    pub fn value_string(&self) -> String {
        let parts: Vec<String> = self.values.iter().map(ToString::to_string).collect();
        format!("({})", parts.join(", "))
    }
}

/// The result of evaluating a query: output tuples in deterministic
/// (value-sorted) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryResult {
    /// Output tuples with provenance, sorted by value.
    pub tuples: Vec<OutputTuple>,
}

impl QueryResult {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Find the tuple with the given values.
    pub fn tuple(&self, values: &[Value]) -> Option<&OutputTuple> {
        self.tuples.iter().find(|t| t.values == values)
    }

    /// The witness set: output values only (for witness-based similarity).
    pub fn witnesses(&self) -> Vec<&[Value]> {
        self.tuples.iter().map(|t| t.values.as_slice()).collect()
    }
}

/// Evaluation failure: schema mismatch between query and database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate an SPJU query with provenance tracking.
pub fn evaluate(db: &Database, q: &Query) -> Result<QueryResult, EvalError> {
    let mut sp = ls_obs::span("relational.evaluate").with("blocks", q.blocks.len());
    let mut by_values: BTreeMap<Vec<Value>, Vec<Monomial>> = BTreeMap::new();
    for block in &q.blocks {
        let rows = eval_block(db, block)?;
        for (values, mono) in rows {
            by_values.entry(values).or_default().push(mono);
        }
    }
    let tuples: Vec<OutputTuple> = by_values
        .into_iter()
        .map(|(values, monos)| OutputTuple {
            values,
            derivations: minimize_dnf(monos),
        })
        .collect();
    sp.record("tuples", tuples.len());
    if ls_obs::enabled() {
        ls_obs::counter("relational.tuples_emitted").add(tuples.len() as u64);
        ls_obs::counter("relational.queries").incr();
    }
    Ok(QueryResult { tuples })
}

/// Remove subsumed monomials (DNF absorption: `m ∨ (m ∧ x) = m`) and
/// duplicates. The result is sorted by (length, content) for determinism.
pub fn minimize_dnf(mut monos: Vec<Monomial>) -> Vec<Monomial> {
    monos.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    monos.dedup();
    let mut kept: Vec<Monomial> = Vec::with_capacity(monos.len());
    for m in monos {
        if !kept.iter().any(|k| k.subsumes(&m)) {
            kept.push(m);
        }
    }
    kept
}

/// One intermediate row during join processing: the concatenated values of
/// all bound aliases plus the conjunctive provenance so far.
struct Intermediate {
    values: Vec<Value>,
    mono: Monomial,
}

/// Evaluate a single SPJ block, returning `(projected values, monomial)` rows.
fn eval_block(db: &Database, b: &SpjBlock) -> Result<Vec<(Vec<Value>, Monomial)>, EvalError> {
    // Per-operator row totals, accumulated locally (plain integer adds) and
    // published to the ls-obs counters once per block so that disabled-mode
    // overhead stays within noise.
    let mut rows_scanned = 0u64;
    let mut rows_joined = 0u64;
    // Scan each alias with its pushed-down selections.
    let mut scans: Vec<(String, Vec<String>, Vec<Intermediate>)> = Vec::new();
    for tref in &b.tables {
        let table = db
            .table(&tref.table)
            .ok_or_else(|| EvalError::new(format!("no such table `{}`", tref.table)))?;
        let col_names: Vec<String> = table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let sels: Vec<_> = b
            .selections
            .iter()
            .filter(|s| s.col().table == tref.alias)
            .collect();
        for s in &sels {
            if table.schema.col_index(&s.col().column).is_none() {
                return Err(EvalError::new(format!(
                    "no column `{}` in table `{}`",
                    s.col().column,
                    tref.table
                )));
            }
        }
        let mut rows = Vec::new();
        for row in table.iter() {
            rows_scanned += 1;
            let passes = sels.iter().all(|s| {
                let idx = table
                    .schema
                    .col_index(&s.col().column)
                    .expect("validated above");
                s.matches(&row.values[idx])
            });
            if passes {
                rows.push(Intermediate {
                    values: row.values.clone(),
                    mono: Monomial::of(row.fact),
                });
            }
        }
        scans.push((tref.alias.clone(), col_names, rows));
    }

    // Column layout of the in-flight joined relation: (alias, column) → index.
    let mut layout: HashMap<(String, String), usize> = HashMap::new();
    let mut current: Vec<Intermediate> = Vec::new();
    let mut bound: Vec<String> = Vec::new();
    let mut remaining: Vec<(String, Vec<String>, Vec<Intermediate>)> = scans;
    let mut pending_joins: Vec<&crate::algebra::JoinCond> = b.joins.iter().collect();

    // Validate join/projection column references against schemas up front.
    for j in &b.joins {
        for side in [&j.left, &j.right] {
            check_col(db, b, side)?;
        }
    }
    for c in &b.projection {
        check_col(db, b, c)?;
    }

    while !remaining.is_empty() {
        let next_idx = if bound.is_empty() {
            0
        } else {
            // Prefer an alias connected to the bound set by a pending join.
            remaining
                .iter()
                .position(|(alias, _, _)| {
                    pending_joins.iter().any(|j| {
                        (j.left.table == *alias && bound.contains(&j.right.table))
                            || (j.right.table == *alias && bound.contains(&j.left.table))
                    })
                })
                .unwrap_or(0)
        };
        let (alias, col_names, rows) = remaining.remove(next_idx);

        if bound.is_empty() {
            for (i, c) in col_names.iter().enumerate() {
                layout.insert((alias.clone(), c.clone()), i);
            }
            current = rows;
            bound.push(alias);
            continue;
        }

        // Join conditions connecting the incoming alias to the bound set.
        let (connecting, rest): (Vec<_>, Vec<_>) = pending_joins.into_iter().partition(|j| {
            (j.left.table == alias && bound.contains(&j.right.table))
                || (j.right.table == alias && bound.contains(&j.left.table))
        });
        pending_joins = rest;

        // Key extractors: bound side indexes into `current`, new side into row.
        let mut bound_key_idx = Vec::new();
        let mut new_key_idx = Vec::new();
        for j in &connecting {
            let (bound_side, new_side) = if j.left.table == alias {
                (&j.right, &j.left)
            } else {
                (&j.left, &j.right)
            };
            let bidx = *layout
                .get(&(bound_side.table.clone(), bound_side.column.clone()))
                .expect("bound side must be in layout");
            let nidx = col_names
                .iter()
                .position(|c| *c == new_side.column)
                .expect("validated above");
            bound_key_idx.push(bidx);
            new_key_idx.push(nidx);
        }

        // Hash the (smaller, scanned) side on its key.
        let mut hash: HashMap<Vec<Value>, Vec<&Intermediate>> = HashMap::new();
        for r in &rows {
            let key: Vec<Value> = new_key_idx.iter().map(|&i| r.values[i].clone()).collect();
            hash.entry(key).or_default().push(r);
        }

        let base_width = layout.len();
        let mut joined = Vec::new();
        for cur in &current {
            let key: Vec<Value> = bound_key_idx
                .iter()
                .map(|&i| cur.values[i].clone())
                .collect();
            if let Some(matches) = hash.get(&key) {
                for m in matches {
                    let mut values = cur.values.clone();
                    values.extend(m.values.iter().cloned());
                    joined.push(Intermediate {
                        values,
                        mono: cur.mono.and(&m.mono),
                    });
                }
            }
        }
        for (i, c) in col_names.iter().enumerate() {
            layout.insert((alias.clone(), c.clone()), base_width + i);
        }
        rows_joined += joined.len() as u64;
        current = joined;
        bound.push(alias);
    }

    // Residual join conditions (both sides were already bound when the
    // condition became applicable — e.g. cycles in the join graph).
    for j in pending_joins {
        let li = *layout
            .get(&(j.left.table.clone(), j.left.column.clone()))
            .expect("validated above");
        let ri = *layout
            .get(&(j.right.table.clone(), j.right.column.clone()))
            .expect("validated above");
        current.retain(|r| r.values[li] == r.values[ri]);
    }

    if ls_obs::enabled() {
        ls_obs::counter("relational.rows_scanned").add(rows_scanned);
        ls_obs::counter("relational.rows_joined").add(rows_joined);
    }

    // Project.
    let proj_idx: Vec<usize> = b
        .projection
        .iter()
        .map(|c| {
            *layout
                .get(&(c.table.clone(), c.column.clone()))
                .expect("validated above")
        })
        .collect();
    Ok(current
        .into_iter()
        .map(|r| {
            let values: Vec<Value> = proj_idx.iter().map(|&i| r.values[i].clone()).collect();
            (values, r.mono)
        })
        .collect())
}

fn check_col(db: &Database, b: &SpjBlock, c: &ColRef) -> Result<(), EvalError> {
    let table_name = b
        .table_of_alias(&c.table)
        .ok_or_else(|| EvalError::new(format!("unknown alias `{}`", c.table)))?;
    let table = db
        .table(table_name)
        .ok_or_else(|| EvalError::new(format!("no such table `{table_name}`")))?;
    if table.schema.col_index(&c.column).is_none() {
        return Err(EvalError::new(format!(
            "no column `{}` in table `{table_name}`",
            c.column
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::sql::parser::parse_query;
    use crate::value::ColType;

    /// The running-example movie database from Figure 1 of the paper
    /// (restricted to the columns the examples use).
    pub(crate) fn figure1_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "movies",
            &[
                ("title", ColType::Str),
                ("year", ColType::Int),
                ("company", ColType::Str),
            ],
        ));
        db.create_table(TableSchema::new(
            "actors",
            &[("name", ColType::Str), ("age", ColType::Int)],
        ));
        db.create_table(TableSchema::new(
            "companies",
            &[("name", ColType::Str), ("country", ColType::Str)],
        ));
        db.create_table(TableSchema::new(
            "roles",
            &[("actor", ColType::Str), ("movie", ColType::Str)],
        ));
        // movies: m1..m5
        db.insert(
            "movies",
            vec!["Superman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Batman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Spiderman".into(), 2007.into(), "Warner".into()],
        );
        db.insert(
            "movies",
            vec!["Aquaman".into(), 2006.into(), "Warner".into()],
        );
        db.insert("movies", vec!["Iceman".into(), 2007.into(), "Sony".into()]);
        // actors: a1..a4
        db.insert("actors", vec!["Alice".into(), 45.into()]);
        db.insert("actors", vec!["Bob".into(), 30.into()]);
        db.insert("actors", vec!["Carol".into(), 38.into()]);
        db.insert("actors", vec!["David".into(), 23.into()]);
        // companies: c1..c3
        db.insert("companies", vec!["Universal".into(), "USA".into()]);
        db.insert("companies", vec!["Warner".into(), "USA".into()]);
        db.insert("companies", vec!["Sony".into(), "Japan".into()]);
        // roles: r1..r7
        db.insert("roles", vec!["Alice".into(), "Superman".into()]);
        db.insert("roles", vec!["Alice".into(), "Batman".into()]);
        db.insert("roles", vec!["Alice".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Bob".into(), "Batman".into()]);
        db.insert("roles", vec!["Carol".into(), "Aquaman".into()]);
        db.insert("roles", vec!["David".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Carol".into(), "Iceman".into()]);
        db
    }

    const Q_INF: &str = "SELECT DISTINCT actors.name \
        FROM movies, actors, companies, roles \
        WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
        movies.company = companies.name AND companies.country = 'USA' AND \
        movies.year = 2007";

    #[test]
    fn running_example_output() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let names: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(names, vec!["Alice", "Bob", "David"]);
    }

    #[test]
    fn alice_provenance_has_three_derivations() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let alice = res.tuple(&[Value::from("Alice")]).unwrap();
        // Alice appears via Superman/Universal, Batman/Universal,
        // Spiderman/Warner — three derivations of four facts each.
        assert_eq!(alice.derivations.len(), 3);
        for d in &alice.derivations {
            assert_eq!(d.len(), 4);
        }
        // Lineage: a1, 3 movies, 2 companies, 3 roles = 9 facts.
        assert_eq!(alice.lineage().len(), 9);
    }

    #[test]
    fn selection_only_query() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 2007").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 4);
        for t in &res.tuples {
            assert_eq!(t.derivations.len(), 1);
            assert_eq!(t.derivations[0].len(), 1);
        }
    }

    #[test]
    fn union_merges_provenance() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Universal'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        // Superman is in both branches, via the same fact — one derivation.
        let superman = res.tuple(&[Value::from("Superman")]).unwrap();
        assert_eq!(superman.derivations.len(), 1);
        // Aquaman only matches the second branch... no — Aquaman is Warner
        // 2006, so it matches neither. Iceman matches only the first branch.
        assert!(res.tuple(&[Value::from("Iceman")]).is_some());
        assert!(res.tuple(&[Value::from("Aquaman")]).is_none());
    }

    #[test]
    fn cross_product_fallback() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT companies.name, actors.name FROM companies, actors \
             WHERE companies.country = 'Japan' AND actors.age > 40",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1); // Sony × Alice
        assert_eq!(res.tuples[0].derivations[0].len(), 2);
    }

    #[test]
    fn self_join_with_aliases() {
        let db = figure1_db();
        // Pairs of distinct actors playing in the same movie.
        let q = parse_query(
            "SELECT r1.actor, r2.actor FROM roles r1, roles r2 \
             WHERE r1.movie = r2.movie AND r1.actor < 'Bob' AND r2.actor >= 'Bob'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let pairs: Vec<String> = res.tuples.iter().map(|t| t.value_string()).collect();
        assert_eq!(pairs, vec!["(Alice, Bob)", "(Alice, David)"]);
    }

    #[test]
    fn cyclic_join_conditions_are_applied() {
        let db = figure1_db();
        // Triangle: movies-roles join plus a redundant condition closing a
        // cycle through companies.
        let q = parse_query(
            "SELECT movies.title FROM movies, companies, roles \
             WHERE movies.company = companies.name AND movies.title = roles.movie \
             AND companies.country = 'USA' AND roles.actor = 'Alice' \
             AND companies.name = movies.company",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn empty_result() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 1999").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        assert!(res.witnesses().is_empty());
    }

    #[test]
    fn missing_table_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT directors.name FROM directors").unwrap();
        assert!(evaluate(&db, &q).is_err());
    }

    #[test]
    fn missing_column_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.budget FROM movies").unwrap();
        let err = evaluate(&db, &q).unwrap_err();
        assert!(err.message.contains("budget"));
        let q2 = parse_query("SELECT movies.title FROM movies WHERE movies.budget > 3").unwrap();
        assert!(evaluate(&db, &q2).is_err());
    }

    #[test]
    fn minimize_dnf_absorption() {
        let m = |ids: &[u32]| Monomial::from_facts(ids.iter().map(|&i| FactId(i)).collect());
        let out = minimize_dnf(vec![m(&[1, 2, 3]), m(&[1, 2]), m(&[4]), m(&[1, 2])]);
        assert_eq!(out, vec![m(&[4]), m(&[1, 2])]);
    }

    #[test]
    fn query_over_empty_table() {
        let mut db = Database::new();
        db.create_table(crate::schema::TableSchema::new(
            "empty",
            &[("x", crate::value::ColType::Int)],
        ));
        let q = parse_query("SELECT empty.x FROM empty").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        // Joining a non-empty table with an empty one is also empty.
        let db2 = figure1_db();
        let mut db3 = db2.clone();
        db3.create_table(crate::schema::TableSchema::new(
            "nothing",
            &[("title", crate::value::ColType::Str)],
        ));
        let q = parse_query(
            "SELECT movies.title FROM movies, nothing WHERE movies.title = nothing.title",
        )
        .unwrap();
        assert!(evaluate(&db3, &q).unwrap().is_empty());
    }

    #[test]
    fn duplicate_projection_column() {
        let db = figure1_db();
        let q = parse_query("SELECT actors.name, actors.name FROM actors WHERE actors.age > 40")
            .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res.tuples[0].values[0], res.tuples[0].values[1]);
    }

    #[test]
    fn selection_on_join_column() {
        let db = figure1_db();
        // The join column also carries a selection predicate.
        let q = parse_query(
            "SELECT roles.actor FROM movies, roles \
             WHERE movies.title = roles.movie AND movies.title = 'Batman'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let actors: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(actors, vec!["Alice", "Bob"]);
    }

    #[test]
    fn union_of_three_blocks() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2006 \
             UNION SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Sony'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 5); // all five movies
    }

    #[test]
    fn results_are_value_sorted_and_deterministic() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let r1 = evaluate(&db, &q).unwrap();
        let r2 = evaluate(&db, &q).unwrap();
        assert_eq!(r1, r2);
        let mut sorted = r1.tuples.clone();
        sorted.sort_by(|a, b| a.values.cmp(&b.values));
        assert_eq!(r1.tuples, sorted);
    }
}
