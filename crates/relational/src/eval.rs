//! Semiring-generic evaluation of SPJU queries.
//!
//! The evaluator is written once against the [`Provenance`] trait and threads
//! an opaque tag through every operator: scans call `tagging_fn` per matching
//! row, joins combine row tags with `mult`, union + duplicate elimination
//! folds alternative derivations of one output tuple with `add`, and each
//! grouped tag is normalized with `saturate` at the result boundary. Nothing
//! here knows what a tag *is* — monotone-DNF lineage, a multiplicity, a
//! probability — so new semirings require zero changes to this module.
//!
//! Execution strategy: per-alias scans with selection pushdown, then greedy
//! hash equi-joins along the join graph (falling back to a cross product for
//! disconnected components), final projection, and grouping of derivations by
//! output values. Union branches are evaluated independently and merged.
//!
//! Internally everything runs over the database's interned representation:
//! rows are [`IdRow`]s of [`ValueId`]s (join keys, group-by keys and residual
//! equality checks are `u32` comparisons) and block intermediates live in one
//! flat per-block buffer. The classic decoded / interned monotone-DNF views
//! live in [`crate::results`], as thin instantiations of [`evaluate_with`].

use crate::algebra::{CmpOp, ColRef, Query, Selection, SpjBlock};
use crate::database::Database;
use crate::hash::FxHashMap;
use crate::row::IdRow;
use crate::semiring::Provenance;
use crate::value::ValueId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Evaluation failure: schema mismatch between query and database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate an SPJU query under an arbitrary provenance semiring.
///
/// Returns one `(projected ids, saturated tag)` pair per distinct output
/// tuple, sorted by the tuples' *decoded* values — the deterministic order
/// every downstream consumer (and the parallel-determinism suite) relies on.
///
/// Tags accumulate per output tuple in derivation-discovery order: the union
/// fold is `add(earlier, later)`, so instances whose `add` is sensitive to
/// operand order see derivations exactly as the evaluator produced them.
pub fn evaluate_with<P: Provenance>(
    db: &Database,
    q: &Query,
    prov: &mut P,
) -> Result<Vec<(IdRow, P::Tag)>, EvalError> {
    let mut sp = ls_obs::span("relational.evaluate")
        .with("blocks", q.blocks.len())
        .with("semiring", prov.name());
    // Group derivations by projected row, folding alternatives with `add`.
    let mut by_values: FxHashMap<IdRow, P::Tag> = FxHashMap::default();
    for block in &q.blocks {
        for (values, tag) in eval_block(db, block, prov)? {
            match by_values.entry(values) {
                Entry::Occupied(mut e) => {
                    let z = prov.zero();
                    let prev = std::mem::replace(e.get_mut(), z);
                    *e.get_mut() = prov.add(prev, tag);
                }
                Entry::Vacant(e) => {
                    e.insert(tag);
                }
            }
        }
    }
    let mut tuples: Vec<(IdRow, P::Tag)> = by_values
        .into_iter()
        .map(|(values, tag)| (values, prov.saturate(tag)))
        .collect();
    // Distinct interned rows decode to distinct value rows, so this sort has
    // no ties and the order matches a decoded-value walk.
    let dict = db.dict();
    tuples.sort_by(|a, b| dict.cmp_rows(a.0.as_slice(), b.0.as_slice()));
    sp.record("tuples", tuples.len());
    if ls_obs::enabled() {
        ls_obs::counter("relational.tuples_emitted").add(tuples.len() as u64);
        ls_obs::counter("relational.queries").incr();
        let clauses = ls_obs::histogram("provenance.clauses_per_lineage");
        for (_, tag) in &tuples {
            clauses.record(prov.tag_size(tag) as f64);
        }
        prov.report_metrics();
    }
    Ok(tuples)
}

/// A selection predicate compiled against the value dictionary, so the scan
/// loop works on ids.
enum SelTest<'a> {
    /// Equality against an interned literal: a `u32` compare.
    IdEq(ValueId),
    /// Inequality against an interned literal: a `u32` compare.
    IdNe(ValueId),
    /// The literal appears nowhere in the database — `=` can never match.
    Never,
    /// The literal appears nowhere in the database — `<>` always matches.
    Always,
    /// Range / prefix predicates decode the cell (a dictionary index) and
    /// evaluate the original predicate.
    Decode(&'a Selection),
}

/// An intermediate relation during join processing: all rows in one flat
/// buffer (`data[i*width..(i+1)*width]` is row `i`), with the provenance tag
/// of row `i` in `tags[i]`.
struct Rel<T> {
    width: usize,
    data: Vec<ValueId>,
    tags: Vec<T>,
}

impl<T> Rel<T> {
    fn empty(width: usize) -> Self {
        Rel {
            width,
            data: Vec::new(),
            tags: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.tags.len()
    }

    #[inline]
    fn row(&self, i: usize) -> &[ValueId] {
        &self.data[i * self.width..(i + 1) * self.width]
    }
}

/// Evaluate a single SPJ block, returning `(projected ids, tag)` rows.
fn eval_block<P: Provenance>(
    db: &Database,
    b: &SpjBlock,
    prov: &mut P,
) -> Result<Vec<(IdRow, P::Tag)>, EvalError> {
    let dict = db.dict();
    // Per-operator row totals, accumulated locally (plain integer adds) and
    // published to the ls-obs counters once per block so that disabled-mode
    // overhead stays within noise.
    let mut rows_scanned = 0u64;
    let mut rows_joined = 0u64;
    // Scan each alias with its pushed-down selections.
    let mut scans: Vec<(String, Vec<String>, Rel<P::Tag>)> = Vec::new();
    for tref in &b.tables {
        let table = db
            .table(&tref.table)
            .ok_or_else(|| EvalError::new(format!("no such table `{}`", tref.table)))?;
        let col_names: Vec<String> = table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        // Compile this alias's selections down to id-space tests.
        let mut tests: Vec<(usize, SelTest)> = Vec::new();
        for s in b.selections.iter().filter(|s| s.col().table == tref.alias) {
            let idx = table.schema.col_index(&s.col().column).ok_or_else(|| {
                EvalError::new(format!(
                    "no column `{}` in table `{}`",
                    s.col().column,
                    tref.table
                ))
            })?;
            let test = match s {
                Selection::Cmp {
                    op: CmpOp::Eq, lit, ..
                } => dict.lookup(lit).map_or(SelTest::Never, SelTest::IdEq),
                Selection::Cmp {
                    op: CmpOp::Ne, lit, ..
                } => dict.lookup(lit).map_or(SelTest::Always, SelTest::IdNe),
                other => SelTest::Decode(other),
            };
            tests.push((idx, test));
        }
        rows_scanned += table.len() as u64;
        let width = table.schema.arity();
        let mut rel = Rel::empty(width);
        // A `Never` test empties the scan without touching any row.
        if !tests.iter().any(|(_, t)| matches!(t, SelTest::Never)) {
            for (i, row) in table.id_rows().iter().enumerate() {
                let cells = row.as_slice();
                let passes = tests.iter().all(|&(idx, ref test)| match test {
                    SelTest::IdEq(id) => cells[idx] == *id,
                    SelTest::IdNe(id) => cells[idx] != *id,
                    SelTest::Always => true,
                    SelTest::Never => unreachable!("filtered above"),
                    SelTest::Decode(s) => s.matches(dict.value(cells[idx])),
                });
                if passes {
                    rel.data.extend_from_slice(cells);
                    rel.tags.push(prov.tagging_fn(table.fact_at(i)));
                }
            }
        }
        scans.push((tref.alias.clone(), col_names, rel));
    }

    // Column layout of the in-flight joined relation: (alias, column) → index.
    let mut layout: HashMap<(String, String), usize> = HashMap::new();
    let mut current: Rel<P::Tag> = Rel::empty(0);
    let mut bound: Vec<String> = Vec::new();
    let mut remaining: Vec<(String, Vec<String>, Rel<P::Tag>)> = scans;
    let mut pending_joins: Vec<&crate::algebra::JoinCond> = b.joins.iter().collect();

    // Validate join/projection column references against schemas up front.
    for j in &b.joins {
        for side in [&j.left, &j.right] {
            check_col(db, b, side)?;
        }
    }
    for c in &b.projection {
        check_col(db, b, c)?;
    }

    while !remaining.is_empty() {
        let next_idx = if bound.is_empty() {
            0
        } else {
            // Prefer an alias connected to the bound set by a pending join.
            remaining
                .iter()
                .position(|(alias, _, _)| {
                    pending_joins.iter().any(|j| {
                        (j.left.table == *alias && bound.contains(&j.right.table))
                            || (j.right.table == *alias && bound.contains(&j.left.table))
                    })
                })
                .unwrap_or(0)
        };
        let (alias, col_names, rel) = remaining.remove(next_idx);

        if bound.is_empty() {
            for (i, c) in col_names.iter().enumerate() {
                layout.insert((alias.clone(), c.clone()), i);
            }
            current = rel;
            bound.push(alias);
            continue;
        }

        // Join conditions connecting the incoming alias to the bound set.
        let (connecting, rest): (Vec<_>, Vec<_>) = pending_joins.into_iter().partition(|j| {
            (j.left.table == alias && bound.contains(&j.right.table))
                || (j.right.table == alias && bound.contains(&j.left.table))
        });
        pending_joins = rest;

        // Key extractors: bound side indexes into `current`, new side into row.
        let mut bound_key_idx = Vec::new();
        let mut new_key_idx = Vec::new();
        for j in &connecting {
            let (bound_side, new_side) = if j.left.table == alias {
                (&j.right, &j.left)
            } else {
                (&j.left, &j.right)
            };
            let bidx = *layout
                .get(&(bound_side.table.clone(), bound_side.column.clone()))
                .expect("bound side must be in layout");
            let nidx = col_names
                .iter()
                .position(|c| *c == new_side.column)
                .expect("validated above");
            bound_key_idx.push(bidx);
            new_key_idx.push(nidx);
        }

        // Hash the incoming (scanned) side on its key — keys are id rows, so
        // hashing and equality never touch value bytes.
        let mut hash: FxHashMap<IdRow, Vec<u32>> = FxHashMap::default();
        for i in 0..rel.len() {
            let row = rel.row(i);
            let key: IdRow = new_key_idx.iter().map(|&k| row[k]).collect();
            hash.entry(key).or_default().push(i as u32);
        }

        let base_width = layout.len();
        let cur_w = current.width;
        let mut joined = Rel::empty(cur_w + rel.width);
        for i in 0..current.len() {
            let cur_row = current.row(i);
            let key: IdRow = bound_key_idx.iter().map(|&k| cur_row[k]).collect();
            if let Some(matches) = hash.get(&key) {
                // The probe-side prefix repeats for every match; after the
                // first copy, replicate it from the output buffer itself.
                let first_start = joined.data.len();
                for (n, &j) in matches.iter().enumerate() {
                    if n == 0 {
                        joined.data.extend_from_slice(cur_row);
                    } else {
                        joined
                            .data
                            .extend_from_within(first_start..first_start + cur_w);
                    }
                    joined.data.extend_from_slice(rel.row(j as usize));
                    joined
                        .tags
                        .push(prov.mult(&current.tags[i], &rel.tags[j as usize]));
                }
            }
        }
        for (i, c) in col_names.iter().enumerate() {
            layout.insert((alias.clone(), c.clone()), base_width + i);
        }
        rows_joined += joined.len() as u64;
        current = joined;
        bound.push(alias);
    }

    // Residual join conditions (both sides were already bound when the
    // condition became applicable — e.g. cycles in the join graph). Id
    // equality is value equality, so these are integer compares; surviving
    // rows are compacted in place.
    if !pending_joins.is_empty() {
        let residual: Vec<(usize, usize)> = pending_joins
            .iter()
            .map(|j| {
                let li = *layout
                    .get(&(j.left.table.clone(), j.left.column.clone()))
                    .expect("validated above");
                let ri = *layout
                    .get(&(j.right.table.clone(), j.right.column.clone()))
                    .expect("validated above");
                (li, ri)
            })
            .collect();
        let w = current.width;
        let mut out_len = 0usize;
        for i in 0..current.len() {
            let keep = {
                let row = current.row(i);
                residual.iter().all(|&(li, ri)| row[li] == row[ri])
            };
            if keep {
                if out_len != i {
                    current.data.copy_within(i * w..(i + 1) * w, out_len * w);
                    current.tags.swap(out_len, i);
                }
                out_len += 1;
            }
        }
        current.data.truncate(out_len * w);
        current.tags.truncate(out_len);
    }

    if ls_obs::enabled() {
        ls_obs::counter("relational.rows_scanned").add(rows_scanned);
        ls_obs::counter("relational.rows_joined").add(rows_joined);
    }

    // Project.
    let proj_idx: Vec<usize> = b
        .projection
        .iter()
        .map(|c| {
            *layout
                .get(&(c.table.clone(), c.column.clone()))
                .expect("validated above")
        })
        .collect();
    let Rel { width, data, tags } = current;
    let mut out = Vec::with_capacity(tags.len());
    for (i, tag) in tags.into_iter().enumerate() {
        let row = &data[i * width..(i + 1) * width];
        let values: IdRow = proj_idx.iter().map(|&k| row[k]).collect();
        out.push((values, tag));
    }
    Ok(out)
}

fn check_col(db: &Database, b: &SpjBlock, c: &ColRef) -> Result<(), EvalError> {
    let table_name = b
        .table_of_alias(&c.table)
        .ok_or_else(|| EvalError::new(format!("unknown alias `{}`", c.table)))?;
    let table = db
        .table(table_name)
        .ok_or_else(|| EvalError::new(format!("no such table `{table_name}`")))?;
    if table.schema.col_index(&c.column).is_none() {
        return Err(EvalError::new(format!(
            "no column `{}` in table `{table_name}`",
            c.column
        )));
    }
    Ok(())
}
