//! Provenance-tracking evaluation of SPJU queries.
//!
//! The evaluator computes, for every output tuple, its monotone-DNF Boolean
//! provenance: one [`Monomial`] per derivation, minimized by absorption. The
//! lineage (the paper's `Lineage(D, q, t)`) is the set of facts appearing in
//! at least one derivation.
//!
//! Execution strategy: per-alias scans with selection pushdown, then greedy
//! hash equi-joins along the join graph (falling back to a cross product for
//! disconnected components), final projection, and grouping of derivations by
//! output values. Union branches are evaluated independently and merged.
//!
//! Internally everything runs over the database's interned representation:
//! rows are [`IdRow`]s of [`ValueId`]s (join keys, group-by keys and residual
//! equality checks are `u32` comparisons), block intermediates live in one
//! flat per-block buffer, and derivations are hash-consed [`MonoRef`]s in a
//! [`LineageArena`]. [`evaluate`] decodes the interned result once at the
//! boundary into the classic [`OutputTuple`] view; [`evaluate_interned`]
//! exposes the raw interned form for consumers (Shapley, similarity) that
//! never need decoded values.

use crate::algebra::{CmpOp, ColRef, Query, Selection, SpjBlock};
use crate::arena::{LineageArena, MonoRef};
use crate::database::Database;
use crate::fact::{FactId, Monomial};
use crate::hash::FxHashMap;
use crate::row::IdRow;
use crate::value::{Value, ValueId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// An output tuple with its provenance, decoded to owned [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputTuple {
    /// Projected values.
    pub values: Vec<Value>,
    /// Minimal DNF provenance: every monomial is one derivation, none is
    /// subsumed by another.
    pub derivations: Vec<Monomial>,
}

impl OutputTuple {
    /// The lineage: all facts appearing in at least one derivation, sorted.
    pub fn lineage(&self) -> Vec<FactId> {
        let mut facts: Vec<FactId> = self
            .derivations
            .iter()
            .flat_map(|m| m.facts().iter().copied())
            .collect();
        facts.sort_unstable();
        facts.dedup();
        facts
    }

    /// Render the projected values as `(v1, v2, …)`.
    pub fn value_string(&self) -> String {
        let parts: Vec<String> = self.values.iter().map(ToString::to_string).collect();
        format!("({})", parts.join(", "))
    }
}

/// An output tuple in interned form: projected value ids plus arena refs to
/// its minimal-DNF derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedTuple {
    /// Projected value ids (decode via the database dictionary).
    pub values: IdRow,
    /// Minimal DNF provenance as refs into the result's [`LineageArena`].
    pub derivations: Vec<MonoRef>,
}

/// The interned half of a query result: tuples as [`IdRow`]s with
/// arena-backed provenance.
///
/// Tuples are in the same (decoded-value-sorted) order as
/// [`QueryResult::tuples`]; `tuples[i]` is the interned form of the `i`-th
/// decoded tuple.
#[derive(Debug, Clone)]
pub struct InternedResult {
    /// The hash-consed fact-set arena all `derivations` refs point into.
    pub arena: LineageArena,
    /// Output tuples in decoded-value-sorted order.
    pub tuples: Vec<InternedTuple>,
}

impl InternedResult {
    /// An empty result with a fresh arena.
    pub fn empty() -> Self {
        InternedResult {
            arena: LineageArena::new(),
            tuples: Vec::new(),
        }
    }

    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The interned witness rows (output values only), in result order.
    pub fn witness_ids(&self) -> impl Iterator<Item = &IdRow> {
        self.tuples.iter().map(|t| &t.values)
    }
}

/// The result of evaluating a query: output tuples in deterministic
/// (value-sorted) order, in both decoded and interned form.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output tuples with provenance, sorted by value.
    pub tuples: Vec<OutputTuple>,
    /// The interned form: same tuples as [`IdRow`]s with arena-backed
    /// provenance, for consumers that stay in id space.
    pub interned: InternedResult,
}

/// Results compare by their decoded tuples: the interned side is a cache of
/// the same information (relative to one database) and arenas built by
/// different evaluations may intern in different orders.
impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for QueryResult {}

impl Default for QueryResult {
    fn default() -> Self {
        QueryResult {
            tuples: Vec::new(),
            interned: InternedResult::empty(),
        }
    }
}

impl QueryResult {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Find the tuple with the given values.
    ///
    /// Tuples are value-sorted, so this is a binary search rather than a
    /// linear scan.
    pub fn tuple(&self, values: &[Value]) -> Option<&OutputTuple> {
        self.tuples
            .binary_search_by(|t| t.values.as_slice().cmp(values))
            .ok()
            .map(|i| &self.tuples[i])
    }

    /// The witness set: output values only (for witness-based similarity).
    pub fn witnesses(&self) -> Vec<&[Value]> {
        self.tuples.iter().map(|t| t.values.as_slice()).collect()
    }
}

/// Evaluation failure: schema mismatch between query and database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate an SPJU query with provenance tracking, decoding the interned
/// result into owned [`Value`]s and `Arc`-shared [`Monomial`]s.
pub fn evaluate(db: &Database, q: &Query) -> Result<QueryResult, EvalError> {
    let InternedResult {
        mut arena,
        tuples: interned_tuples,
    } = evaluate_interned(db, q)?;
    let dict = db.dict();
    let tuples: Vec<OutputTuple> = interned_tuples
        .iter()
        .map(|t| OutputTuple {
            values: dict.decode_row(t.values.as_slice()),
            derivations: t.derivations.iter().map(|&r| arena.decode(r)).collect(),
        })
        .collect();
    Ok(QueryResult {
        tuples,
        interned: InternedResult {
            arena,
            tuples: interned_tuples,
        },
    })
}

/// Evaluate an SPJU query entirely in interned space.
///
/// Output tuples are sorted by their *decoded* values (the same deterministic
/// order [`evaluate`] produces), but values stay as [`IdRow`]s and
/// derivations as arena refs — nothing is decoded.
pub fn evaluate_interned(db: &Database, q: &Query) -> Result<InternedResult, EvalError> {
    let mut sp = ls_obs::span("relational.evaluate").with("blocks", q.blocks.len());
    let mut arena = LineageArena::new();
    // Group derivations by projected row. The inline first slot keeps the
    // overwhelmingly common one-derivation-per-tuple case allocation-free.
    let mut by_values: FxHashMap<IdRow, (MonoRef, Vec<MonoRef>)> = FxHashMap::default();
    for block in &q.blocks {
        for (values, mono) in eval_block(db, block, &mut arena)? {
            match by_values.entry(values) {
                Entry::Occupied(mut e) => e.get_mut().1.push(mono),
                Entry::Vacant(e) => {
                    e.insert((mono, Vec::new()));
                }
            }
        }
    }
    let mut tuples: Vec<InternedTuple> = by_values
        .into_iter()
        .map(|(values, (first, mut rest))| {
            let derivations = if rest.is_empty() {
                vec![first]
            } else {
                rest.insert(0, first);
                arena.minimize(rest)
            };
            InternedTuple {
                derivations,
                values,
            }
        })
        .collect();
    // Distinct interned rows decode to distinct value rows, so this sort has
    // no ties and the order matches the old `BTreeMap<Vec<Value>, _>` walk.
    let dict = db.dict();
    tuples.sort_by(|a, b| dict.cmp_rows(a.values.as_slice(), b.values.as_slice()));
    sp.record("tuples", tuples.len());
    if ls_obs::enabled() {
        ls_obs::counter("relational.tuples_emitted").add(tuples.len() as u64);
        ls_obs::counter("relational.queries").incr();
    }
    Ok(InternedResult { arena, tuples })
}

/// Remove subsumed monomials (DNF absorption: `m ∨ (m ∧ x) = m`) and
/// duplicates. The result is sorted by (length, content) for determinism.
///
/// After the sort + dedup, a monomial can only be absorbed by a *strictly
/// shorter* kept monomial (a same-length subsumer would have to be equal, and
/// equals are gone), so absorption scans stop at the current length boundary
/// instead of re-checking every kept monomial.
pub fn minimize_dnf(mut monos: Vec<Monomial>) -> Vec<Monomial> {
    monos.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    monos.dedup();
    let mut kept: Vec<Monomial> = Vec::with_capacity(monos.len());
    let mut cur_len = usize::MAX;
    let mut shorter = 0;
    for m in monos {
        if m.len() != cur_len {
            cur_len = m.len();
            shorter = kept.len();
        }
        if !kept[..shorter].iter().any(|k| k.subsumes(&m)) {
            kept.push(m);
        }
    }
    kept
}

/// A selection predicate compiled against the value dictionary, so the scan
/// loop works on ids.
enum SelTest<'a> {
    /// Equality against an interned literal: a `u32` compare.
    IdEq(ValueId),
    /// Inequality against an interned literal: a `u32` compare.
    IdNe(ValueId),
    /// The literal appears nowhere in the database — `=` can never match.
    Never,
    /// The literal appears nowhere in the database — `<>` always matches.
    Always,
    /// Range / prefix predicates decode the cell (a dictionary index) and
    /// evaluate the original predicate.
    Decode(&'a Selection),
}

/// An intermediate relation during join processing: all rows in one flat
/// buffer (`data[i*width..(i+1)*width]` is row `i`), with the conjunctive
/// provenance of row `i` in `monos[i]`.
struct Rel {
    width: usize,
    data: Vec<ValueId>,
    monos: Vec<MonoRef>,
}

impl Rel {
    fn empty(width: usize) -> Self {
        Rel {
            width,
            data: Vec::new(),
            monos: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.monos.len()
    }

    #[inline]
    fn row(&self, i: usize) -> &[ValueId] {
        &self.data[i * self.width..(i + 1) * self.width]
    }
}

/// Evaluate a single SPJ block, returning `(projected ids, derivation)` rows.
fn eval_block(
    db: &Database,
    b: &SpjBlock,
    arena: &mut LineageArena,
) -> Result<Vec<(IdRow, MonoRef)>, EvalError> {
    let dict = db.dict();
    // Per-operator row totals, accumulated locally (plain integer adds) and
    // published to the ls-obs counters once per block so that disabled-mode
    // overhead stays within noise.
    let mut rows_scanned = 0u64;
    let mut rows_joined = 0u64;
    // Scan each alias with its pushed-down selections.
    let mut scans: Vec<(String, Vec<String>, Rel)> = Vec::new();
    for tref in &b.tables {
        let table = db
            .table(&tref.table)
            .ok_or_else(|| EvalError::new(format!("no such table `{}`", tref.table)))?;
        let col_names: Vec<String> = table
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        // Compile this alias's selections down to id-space tests.
        let mut tests: Vec<(usize, SelTest)> = Vec::new();
        for s in b.selections.iter().filter(|s| s.col().table == tref.alias) {
            let idx = table.schema.col_index(&s.col().column).ok_or_else(|| {
                EvalError::new(format!(
                    "no column `{}` in table `{}`",
                    s.col().column,
                    tref.table
                ))
            })?;
            let test = match s {
                Selection::Cmp {
                    op: CmpOp::Eq, lit, ..
                } => dict.lookup(lit).map_or(SelTest::Never, SelTest::IdEq),
                Selection::Cmp {
                    op: CmpOp::Ne, lit, ..
                } => dict.lookup(lit).map_or(SelTest::Always, SelTest::IdNe),
                other => SelTest::Decode(other),
            };
            tests.push((idx, test));
        }
        rows_scanned += table.len() as u64;
        let width = table.schema.arity();
        let mut rel = Rel::empty(width);
        // A `Never` test empties the scan without touching any row.
        if !tests.iter().any(|(_, t)| matches!(t, SelTest::Never)) {
            for (i, row) in table.id_rows().iter().enumerate() {
                let cells = row.as_slice();
                let passes = tests.iter().all(|&(idx, ref test)| match test {
                    SelTest::IdEq(id) => cells[idx] == *id,
                    SelTest::IdNe(id) => cells[idx] != *id,
                    SelTest::Always => true,
                    SelTest::Never => unreachable!("filtered above"),
                    SelTest::Decode(s) => s.matches(dict.value(cells[idx])),
                });
                if passes {
                    rel.data.extend_from_slice(cells);
                    rel.monos.push(arena.singleton(table.fact_at(i)));
                }
            }
        }
        scans.push((tref.alias.clone(), col_names, rel));
    }

    // Column layout of the in-flight joined relation: (alias, column) → index.
    let mut layout: HashMap<(String, String), usize> = HashMap::new();
    let mut current = Rel::empty(0);
    let mut bound: Vec<String> = Vec::new();
    let mut remaining: Vec<(String, Vec<String>, Rel)> = scans;
    let mut pending_joins: Vec<&crate::algebra::JoinCond> = b.joins.iter().collect();

    // Validate join/projection column references against schemas up front.
    for j in &b.joins {
        for side in [&j.left, &j.right] {
            check_col(db, b, side)?;
        }
    }
    for c in &b.projection {
        check_col(db, b, c)?;
    }

    while !remaining.is_empty() {
        let next_idx = if bound.is_empty() {
            0
        } else {
            // Prefer an alias connected to the bound set by a pending join.
            remaining
                .iter()
                .position(|(alias, _, _)| {
                    pending_joins.iter().any(|j| {
                        (j.left.table == *alias && bound.contains(&j.right.table))
                            || (j.right.table == *alias && bound.contains(&j.left.table))
                    })
                })
                .unwrap_or(0)
        };
        let (alias, col_names, rel) = remaining.remove(next_idx);

        if bound.is_empty() {
            for (i, c) in col_names.iter().enumerate() {
                layout.insert((alias.clone(), c.clone()), i);
            }
            current = rel;
            bound.push(alias);
            continue;
        }

        // Join conditions connecting the incoming alias to the bound set.
        let (connecting, rest): (Vec<_>, Vec<_>) = pending_joins.into_iter().partition(|j| {
            (j.left.table == alias && bound.contains(&j.right.table))
                || (j.right.table == alias && bound.contains(&j.left.table))
        });
        pending_joins = rest;

        // Key extractors: bound side indexes into `current`, new side into row.
        let mut bound_key_idx = Vec::new();
        let mut new_key_idx = Vec::new();
        for j in &connecting {
            let (bound_side, new_side) = if j.left.table == alias {
                (&j.right, &j.left)
            } else {
                (&j.left, &j.right)
            };
            let bidx = *layout
                .get(&(bound_side.table.clone(), bound_side.column.clone()))
                .expect("bound side must be in layout");
            let nidx = col_names
                .iter()
                .position(|c| *c == new_side.column)
                .expect("validated above");
            bound_key_idx.push(bidx);
            new_key_idx.push(nidx);
        }

        // Hash the incoming (scanned) side on its key — keys are id rows, so
        // hashing and equality never touch value bytes.
        let mut hash: FxHashMap<IdRow, Vec<u32>> = FxHashMap::default();
        for i in 0..rel.len() {
            let row = rel.row(i);
            let key: IdRow = new_key_idx.iter().map(|&k| row[k]).collect();
            hash.entry(key).or_default().push(i as u32);
        }

        let base_width = layout.len();
        let cur_w = current.width;
        let mut joined = Rel::empty(cur_w + rel.width);
        for i in 0..current.len() {
            let cur_row = current.row(i);
            let key: IdRow = bound_key_idx.iter().map(|&k| cur_row[k]).collect();
            if let Some(matches) = hash.get(&key) {
                // The probe-side prefix repeats for every match; after the
                // first copy, replicate it from the output buffer itself.
                let first_start = joined.data.len();
                for (n, &j) in matches.iter().enumerate() {
                    if n == 0 {
                        joined.data.extend_from_slice(cur_row);
                    } else {
                        joined
                            .data
                            .extend_from_within(first_start..first_start + cur_w);
                    }
                    joined.data.extend_from_slice(rel.row(j as usize));
                    joined
                        .monos
                        .push(arena.and(current.monos[i], rel.monos[j as usize]));
                }
            }
        }
        for (i, c) in col_names.iter().enumerate() {
            layout.insert((alias.clone(), c.clone()), base_width + i);
        }
        rows_joined += joined.len() as u64;
        current = joined;
        bound.push(alias);
    }

    // Residual join conditions (both sides were already bound when the
    // condition became applicable — e.g. cycles in the join graph). Id
    // equality is value equality, so these are integer compares; surviving
    // rows are compacted in place.
    if !pending_joins.is_empty() {
        let residual: Vec<(usize, usize)> = pending_joins
            .iter()
            .map(|j| {
                let li = *layout
                    .get(&(j.left.table.clone(), j.left.column.clone()))
                    .expect("validated above");
                let ri = *layout
                    .get(&(j.right.table.clone(), j.right.column.clone()))
                    .expect("validated above");
                (li, ri)
            })
            .collect();
        let w = current.width;
        let mut out_len = 0usize;
        for i in 0..current.len() {
            let keep = {
                let row = current.row(i);
                residual.iter().all(|&(li, ri)| row[li] == row[ri])
            };
            if keep {
                if out_len != i {
                    current.data.copy_within(i * w..(i + 1) * w, out_len * w);
                    current.monos[out_len] = current.monos[i];
                }
                out_len += 1;
            }
        }
        current.data.truncate(out_len * w);
        current.monos.truncate(out_len);
    }

    if ls_obs::enabled() {
        ls_obs::counter("relational.rows_scanned").add(rows_scanned);
        ls_obs::counter("relational.rows_joined").add(rows_joined);
    }

    // Project.
    let proj_idx: Vec<usize> = b
        .projection
        .iter()
        .map(|c| {
            *layout
                .get(&(c.table.clone(), c.column.clone()))
                .expect("validated above")
        })
        .collect();
    let mut out = Vec::with_capacity(current.len());
    for i in 0..current.len() {
        let row = current.row(i);
        let values: IdRow = proj_idx.iter().map(|&k| row[k]).collect();
        out.push((values, current.monos[i]));
    }
    Ok(out)
}

fn check_col(db: &Database, b: &SpjBlock, c: &ColRef) -> Result<(), EvalError> {
    let table_name = b
        .table_of_alias(&c.table)
        .ok_or_else(|| EvalError::new(format!("unknown alias `{}`", c.table)))?;
    let table = db
        .table(table_name)
        .ok_or_else(|| EvalError::new(format!("no such table `{table_name}`")))?;
    if table.schema.col_index(&c.column).is_none() {
        return Err(EvalError::new(format!(
            "no column `{}` in table `{table_name}`",
            c.column
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::sql::parser::parse_query;
    use crate::value::ColType;

    /// The running-example movie database from Figure 1 of the paper
    /// (restricted to the columns the examples use).
    pub(crate) fn figure1_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "movies",
            &[
                ("title", ColType::Str),
                ("year", ColType::Int),
                ("company", ColType::Str),
            ],
        ));
        db.create_table(TableSchema::new(
            "actors",
            &[("name", ColType::Str), ("age", ColType::Int)],
        ));
        db.create_table(TableSchema::new(
            "companies",
            &[("name", ColType::Str), ("country", ColType::Str)],
        ));
        db.create_table(TableSchema::new(
            "roles",
            &[("actor", ColType::Str), ("movie", ColType::Str)],
        ));
        // movies: m1..m5
        db.insert(
            "movies",
            vec!["Superman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Batman".into(), 2007.into(), "Universal".into()],
        );
        db.insert(
            "movies",
            vec!["Spiderman".into(), 2007.into(), "Warner".into()],
        );
        db.insert(
            "movies",
            vec!["Aquaman".into(), 2006.into(), "Warner".into()],
        );
        db.insert("movies", vec!["Iceman".into(), 2007.into(), "Sony".into()]);
        // actors: a1..a4
        db.insert("actors", vec!["Alice".into(), 45.into()]);
        db.insert("actors", vec!["Bob".into(), 30.into()]);
        db.insert("actors", vec!["Carol".into(), 38.into()]);
        db.insert("actors", vec!["David".into(), 23.into()]);
        // companies: c1..c3
        db.insert("companies", vec!["Universal".into(), "USA".into()]);
        db.insert("companies", vec!["Warner".into(), "USA".into()]);
        db.insert("companies", vec!["Sony".into(), "Japan".into()]);
        // roles: r1..r7
        db.insert("roles", vec!["Alice".into(), "Superman".into()]);
        db.insert("roles", vec!["Alice".into(), "Batman".into()]);
        db.insert("roles", vec!["Alice".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Bob".into(), "Batman".into()]);
        db.insert("roles", vec!["Carol".into(), "Aquaman".into()]);
        db.insert("roles", vec!["David".into(), "Spiderman".into()]);
        db.insert("roles", vec!["Carol".into(), "Iceman".into()]);
        db
    }

    const Q_INF: &str = "SELECT DISTINCT actors.name \
        FROM movies, actors, companies, roles \
        WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
        movies.company = companies.name AND companies.country = 'USA' AND \
        movies.year = 2007";

    #[test]
    fn running_example_output() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let names: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(names, vec!["Alice", "Bob", "David"]);
    }

    #[test]
    fn alice_provenance_has_three_derivations() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let alice = res.tuple(&[Value::from("Alice")]).unwrap();
        // Alice appears via Superman/Universal, Batman/Universal,
        // Spiderman/Warner — three derivations of four facts each.
        assert_eq!(alice.derivations.len(), 3);
        for d in &alice.derivations {
            assert_eq!(d.len(), 4);
        }
        // Lineage: a1, 3 movies, 2 companies, 3 roles = 9 facts.
        assert_eq!(alice.lineage().len(), 9);
    }

    #[test]
    fn interned_result_mirrors_decoded_result() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let res = evaluate(&db, &q).unwrap();
        let interned = evaluate_interned(&db, &q).unwrap();
        assert_eq!(res.interned.len(), res.len());
        assert_eq!(interned.len(), res.len());
        for (it, t) in interned.tuples.iter().zip(&res.tuples) {
            assert_eq!(db.dict().decode_row(it.values.as_slice()), t.values);
            assert_eq!(it.derivations.len(), t.derivations.len());
            for (&r, m) in it.derivations.iter().zip(&t.derivations) {
                assert_eq!(interned.arena.facts(r), m.facts());
            }
        }
        let wits: Vec<&IdRow> = interned.witness_ids().collect();
        assert_eq!(wits.len(), 3);
    }

    #[test]
    fn selection_only_query() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 2007").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 4);
        for t in &res.tuples {
            assert_eq!(t.derivations.len(), 1);
            assert_eq!(t.derivations[0].len(), 1);
        }
    }

    #[test]
    fn selection_on_absent_literal() {
        let db = figure1_db();
        // 'Nolan' is interned nowhere: `=` short-circuits to empty, `<>`
        // passes every row.
        let q =
            parse_query("SELECT movies.title FROM movies WHERE movies.title = 'Nolan'").unwrap();
        assert!(evaluate(&db, &q).unwrap().is_empty());
        let q2 =
            parse_query("SELECT movies.title FROM movies WHERE movies.title <> 'Nolan'").unwrap();
        assert_eq!(evaluate(&db, &q2).unwrap().len(), 5);
    }

    #[test]
    fn union_merges_provenance() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Universal'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        // Superman is in both branches, via the same fact — one derivation.
        let superman = res.tuple(&[Value::from("Superman")]).unwrap();
        assert_eq!(superman.derivations.len(), 1);
        // Aquaman only matches the second branch... no — Aquaman is Warner
        // 2006, so it matches neither. Iceman matches only the first branch.
        assert!(res.tuple(&[Value::from("Iceman")]).is_some());
        assert!(res.tuple(&[Value::from("Aquaman")]).is_none());
    }

    #[test]
    fn cross_product_fallback() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT companies.name, actors.name FROM companies, actors \
             WHERE companies.country = 'Japan' AND actors.age > 40",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1); // Sony × Alice
        assert_eq!(res.tuples[0].derivations[0].len(), 2);
    }

    #[test]
    fn self_join_with_aliases() {
        let db = figure1_db();
        // Pairs of distinct actors playing in the same movie.
        let q = parse_query(
            "SELECT r1.actor, r2.actor FROM roles r1, roles r2 \
             WHERE r1.movie = r2.movie AND r1.actor < 'Bob' AND r2.actor >= 'Bob'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let pairs: Vec<String> = res.tuples.iter().map(|t| t.value_string()).collect();
        assert_eq!(pairs, vec!["(Alice, Bob)", "(Alice, David)"]);
    }

    #[test]
    fn cyclic_join_conditions_are_applied() {
        let db = figure1_db();
        // Triangle: movies-roles join plus a redundant condition closing a
        // cycle through companies.
        let q = parse_query(
            "SELECT movies.title FROM movies, companies, roles \
             WHERE movies.company = companies.name AND movies.title = roles.movie \
             AND companies.country = 'USA' AND roles.actor = 'Alice' \
             AND companies.name = movies.company",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn empty_result() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies WHERE movies.year = 1999").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        assert!(res.witnesses().is_empty());
    }

    #[test]
    fn missing_table_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT directors.name FROM directors").unwrap();
        assert!(evaluate(&db, &q).is_err());
    }

    #[test]
    fn missing_column_is_error() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.budget FROM movies").unwrap();
        let err = evaluate(&db, &q).unwrap_err();
        assert!(err.message.contains("budget"));
        let q2 = parse_query("SELECT movies.title FROM movies WHERE movies.budget > 3").unwrap();
        assert!(evaluate(&db, &q2).is_err());
    }

    #[test]
    fn minimize_dnf_absorption() {
        let m = |ids: &[u32]| Monomial::from_facts(ids.iter().map(|&i| FactId(i)).collect());
        let out = minimize_dnf(vec![m(&[1, 2, 3]), m(&[1, 2]), m(&[4]), m(&[1, 2])]);
        assert_eq!(out, vec![m(&[4]), m(&[1, 2])]);
    }

    #[test]
    fn minimize_dnf_pathological_same_length_plateau() {
        // 1000 monomials dominated by one same-length plateau: 600 distinct
        // pairs that cannot absorb each other, 380 triples absorbed by some
        // pair, and 20 triples that survive. The length-boundary absorption
        // scan must agree with the naive all-kept scan.
        let m = |ids: &[u32]| Monomial::from_facts(ids.iter().map(|&i| FactId(i)).collect());
        let mut monos: Vec<Monomial> = Vec::new();
        for i in 0..600u32 {
            monos.push(m(&[2 * i, 2 * i + 1]));
        }
        for i in 0..380u32 {
            // Superset of pair i — absorbed.
            monos.push(m(&[2 * i, 2 * i + 1, 5000 + i]));
        }
        for i in 0..20u32 {
            // Fresh facts only — kept.
            monos.push(m(&[6000 + 3 * i, 6001 + 3 * i, 6002 + 3 * i]));
        }
        assert_eq!(monos.len(), 1000);

        // Naive quadratic reference: scan every kept monomial.
        let naive = {
            let mut ms = monos.clone();
            ms.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            ms.dedup();
            let mut kept: Vec<Monomial> = Vec::new();
            for mm in ms {
                if !kept.iter().any(|k| k.subsumes(&mm)) {
                    kept.push(mm);
                }
            }
            kept
        };

        let out = minimize_dnf(monos);
        assert_eq!(out.len(), 620);
        assert_eq!(out, naive);
    }

    #[test]
    fn query_over_empty_table() {
        let mut db = Database::new();
        db.create_table(crate::schema::TableSchema::new(
            "empty",
            &[("x", crate::value::ColType::Int)],
        ));
        let q = parse_query("SELECT empty.x FROM empty").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert!(res.is_empty());
        // Joining a non-empty table with an empty one is also empty.
        let db2 = figure1_db();
        let mut db3 = db2.clone();
        db3.create_table(crate::schema::TableSchema::new(
            "nothing",
            &[("title", crate::value::ColType::Str)],
        ));
        let q = parse_query(
            "SELECT movies.title FROM movies, nothing WHERE movies.title = nothing.title",
        )
        .unwrap();
        assert!(evaluate(&db3, &q).unwrap().is_empty());
    }

    #[test]
    fn duplicate_projection_column() {
        let db = figure1_db();
        let q = parse_query("SELECT actors.name, actors.name FROM actors WHERE actors.age > 40")
            .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res.tuples[0].values[0], res.tuples[0].values[1]);
    }

    #[test]
    fn selection_on_join_column() {
        let db = figure1_db();
        // The join column also carries a selection predicate.
        let q = parse_query(
            "SELECT roles.actor FROM movies, roles \
             WHERE movies.title = roles.movie AND movies.title = 'Batman'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        let actors: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
        assert_eq!(actors, vec!["Alice", "Bob"]);
    }

    #[test]
    fn union_of_three_blocks() {
        let db = figure1_db();
        let q = parse_query(
            "SELECT movies.title FROM movies WHERE movies.year = 2006 \
             UNION SELECT movies.title FROM movies WHERE movies.year = 2007 \
             UNION SELECT movies.title FROM movies WHERE movies.company = 'Sony'",
        )
        .unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 5); // all five movies
    }

    #[test]
    fn results_are_value_sorted_and_deterministic() {
        let db = figure1_db();
        let q = parse_query(Q_INF).unwrap();
        let r1 = evaluate(&db, &q).unwrap();
        let r2 = evaluate(&db, &q).unwrap();
        assert_eq!(r1, r2);
        let mut sorted = r1.tuples.clone();
        sorted.sort_by(|a, b| a.values.cmp(&b.values));
        assert_eq!(r1.tuples, sorted);
    }

    #[test]
    fn tuple_lookup_uses_sorted_order() {
        let db = figure1_db();
        let q = parse_query("SELECT movies.title FROM movies").unwrap();
        let res = evaluate(&db, &q).unwrap();
        assert_eq!(res.len(), 5);
        for t in &res.tuples {
            assert_eq!(res.tuple(&t.values).unwrap(), t);
        }
        assert!(res.tuple(&[Value::from("Nolan")]).is_none());
        assert!(res.tuple(&[Value::from("")]).is_none());
    }
}
