//! Fast deterministic hashing for the engine's internal maps.
//!
//! The evaluator's hot loops hash tiny integer keys (interned [`crate::ValueId`]
//! rows, arena refs, precomputed `u64` digests) thousands of times per query;
//! the standard library's DoS-resistant SipHash dominates those loops. This is
//! a hand-rolled FxHash-style multiply-rotate hasher — not DoS-resistant, which
//! is fine for maps keyed by dense internal ids that no adversary chooses.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` wired to [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A multiply-rotate hasher in the style of rustc's FxHash.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&[1u32, 2]), hash_of(&[2u32, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as usize * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&7], 14);
    }
}
