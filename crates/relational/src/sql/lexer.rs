//! Tokenizer for the SPJU SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keyword (uppercased): SELECT, DISTINCT, FROM, WHERE, AND, UNION, LIKE, AS.
    Keyword(String),
    /// Identifier (table/column name), original case preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// Comparison operator: `=`, `<>`, `<`, `<=`, `>`, `>=`.
    Op(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Op(o) => write!(f, "{o}"),
        }
    }
}

/// A lexing failure: unexpected character or unterminated literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "UNION", "LIKE", "AS",
];

/// Tokenize `input` into a flat token stream.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op("=".into()));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Op("<=".into()));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Op("<>".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::Op("<>".into()));
                i += 2;
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if i >= bytes.len() || !(bytes[i] as char).is_ascii_digit() {
                        return Err(LexError {
                            message: "`-` not followed by a digit".into(),
                            offset: start,
                        });
                    }
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n = text.parse::<i64>().map_err(|e| LexError {
                    message: format!("bad integer `{text}`: {e}"),
                    offset: start,
                })?;
                tokens.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_owned()));
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

/// Lex a single-quoted string starting at byte `start` (which must be `'`).
/// Returns the unescaped contents and the offset just past the closing quote.
fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(LexError {
        message: "unterminated string literal".into(),
        offset: start,
    })
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_query() {
        let toks = lex("SELECT a.x FROM a WHERE a.y = 3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("a".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("y".into()),
                Token::Op("=".into()),
                Token::Int(3),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select Distinct froM").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("DISTINCT".into()),
                Token::Keyword("FROM".into()),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(lex("MoViEs").unwrap(), vec![Token::Ident("MoViEs".into())]);
    }

    #[test]
    fn operators() {
        let toks = lex("= <> < <= > >= !=").unwrap();
        let ops: Vec<String> = toks
            .into_iter()
            .map(|t| match t {
                Token::Op(o) => o,
                other => panic!("expected op, got {other:?}"),
            })
            .collect();
        assert_eq!(ops, vec!["=", "<>", "<", "<=", ">", ">=", "<>"]);
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(lex("'USA'").unwrap(), vec![Token::Str("USA".into())]);
        assert_eq!(lex("'O''Hara'").unwrap(), vec![Token::Str("O'Hara".into())]);
    }

    #[test]
    fn negative_integers() {
        assert_eq!(lex("-42").unwrap(), vec![Token::Int(-42)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("'abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn bare_minus_is_error() {
        assert!(lex("- x").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(lex("'café'").unwrap(), vec![Token::Str("café".into())]);
    }

    #[test]
    fn semicolon_token() {
        assert_eq!(
            lex("a;").unwrap(),
            vec![Token::Ident("a".into()), Token::Semicolon]
        );
    }
}
