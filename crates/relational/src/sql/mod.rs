//! SQL front-end for the SPJU subset: lexer, parser and canonical printer.

pub mod lexer;
pub mod parser;
pub mod printer;
