//! Recursive-descent parser for the SPJU SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query  := block (UNION block)* [';']
//! block  := SELECT [DISTINCT] colref (',' colref)*
//!           FROM tableref (',' tableref)*
//!           [WHERE cond (AND cond)*]
//! tableref := ident [[AS] ident]
//! colref := ident '.' ident
//! cond   := colref op (colref | literal)
//!         | colref LIKE 'prefix%'
//! op     := '=' | '<>' | '<' | '<=' | '>' | '>='
//! ```
//!
//! Conditions comparing two columns with `=` become join conditions; all other
//! conditions must compare a column to a literal and become selections.

use super::lexer::{lex, LexError, Token};
use crate::algebra::{CmpOp, ColRef, JoinCond, Query, Selection, SpjBlock, TableRef};
use crate::value::Value;
use std::fmt;

/// A parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parse an SPJU query from SQL text.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut blocks = vec![p.block()?];
    while p.eat_keyword("UNION") {
        blocks.push(p.block()?);
    }
    p.eat(&Token::Semicolon);
    if !p.at_end() {
        return Err(ParseError::new(format!(
            "trailing input starting at `{}`",
            p.peek_describe()
        )));
    }
    let arity = blocks[0].projection.len();
    if blocks.iter().any(|b| b.projection.len() != arity) {
        return Err(ParseError::new("UNION branches have different arities"));
    }
    Ok(Query { blocks })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_describe(&self) -> String {
        self.peek()
            .map_or_else(|| "<end>".into(), |t| t.to_string())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) && {
            self.pos += 1;
            true
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {kw}, found `{}`",
                self.peek_describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected identifier, found `{}`",
                other.map_or_else(|| "<end>".into(), |t| t.to_string())
            ))),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, ParseError> {
        let table = self.expect_ident()?;
        if !self.eat(&Token::Dot) {
            return Err(ParseError::new(format!(
                "expected `.` after `{table}` (column references must be qualified)"
            )));
        }
        let column = self.expect_ident()?;
        Ok(ColRef { table, column })
    }

    fn block(&mut self) -> Result<SpjBlock, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projection = vec![self.col_ref()?];
        while self.eat(&Token::Comma) {
            projection.push(self.col_ref()?);
        }
        self.expect_keyword("FROM")?;
        let mut tables = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            tables.push(self.table_ref()?);
        }
        for (i, t) in tables.iter().enumerate() {
            if tables[..i].iter().any(|p| p.alias == t.alias) {
                return Err(ParseError::new(format!(
                    "duplicate table alias `{}`",
                    t.alias
                )));
            }
        }
        let mut joins = Vec::new();
        let mut selections = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                self.condition(&mut joins, &mut selections)?;
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let block = SpjBlock {
            tables,
            joins,
            selections,
            projection,
            distinct,
        };
        self.validate_refs(&block)?;
        Ok(block)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.expect_ident()?;
        // Optional alias, with or without AS. An identifier directly after a
        // table name is an alias.
        if self.eat_keyword("AS") {
            let alias = self.expect_ident()?;
            return Ok(TableRef::aliased(table, alias));
        }
        if let Some(Token::Ident(_)) = self.peek() {
            let alias = self.expect_ident()?;
            return Ok(TableRef::aliased(table, alias));
        }
        Ok(TableRef::plain(table))
    }

    fn condition(
        &mut self,
        joins: &mut Vec<JoinCond>,
        selections: &mut Vec<Selection>,
    ) -> Result<(), ParseError> {
        let lhs = self.col_ref()?;
        if self.eat_keyword("LIKE") {
            let pat = match self.advance() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(ParseError::new(format!(
                        "expected string pattern after LIKE, found `{}`",
                        other.map_or_else(|| "<end>".into(), |t| t.to_string())
                    )))
                }
            };
            let prefix = pat.strip_suffix('%').ok_or_else(|| {
                ParseError::new(format!(
                    "only `prefix%` LIKE patterns supported, got `{pat}`"
                ))
            })?;
            if prefix.contains('%') || prefix.contains('_') {
                return Err(ParseError::new(format!(
                    "only `prefix%` LIKE patterns supported, got `{pat}`"
                )));
            }
            selections.push(Selection::StartsWith {
                col: lhs,
                prefix: prefix.to_owned(),
            });
            return Ok(());
        }
        let op = match self.advance() {
            Some(Token::Op(o)) => parse_op(&o)?,
            other => {
                return Err(ParseError::new(format!(
                    "expected comparison operator, found `{}`",
                    other.map_or_else(|| "<end>".into(), |t| t.to_string())
                )))
            }
        };
        match self.peek() {
            Some(Token::Ident(_)) => {
                let rhs = self.col_ref()?;
                if op != CmpOp::Eq {
                    return Err(ParseError::new(format!(
                        "column-to-column comparison must use `=`, got `{op}`"
                    )));
                }
                joins.push(JoinCond::new(lhs, rhs));
            }
            Some(Token::Int(_)) | Some(Token::Str(_)) => {
                let lit = match self.advance() {
                    Some(Token::Int(n)) => Value::Int(n),
                    Some(Token::Str(s)) => Value::Str(s),
                    _ => unreachable!("peeked literal"),
                };
                selections.push(Selection::Cmp { col: lhs, op, lit });
            }
            other => {
                return Err(ParseError::new(format!(
                    "expected column or literal after `{op}`, found `{}`",
                    other.map_or_else(|| "<end>".into(), |t| t.to_string())
                )))
            }
        }
        Ok(())
    }

    /// Ensure every column reference in the block resolves to a declared alias.
    fn validate_refs(&self, block: &SpjBlock) -> Result<(), ParseError> {
        let check = |c: &ColRef| -> Result<(), ParseError> {
            if block.table_of_alias(&c.table).is_none() {
                Err(ParseError::new(format!(
                    "unknown table alias `{}` in `{c}`",
                    c.table
                )))
            } else {
                Ok(())
            }
        };
        for c in &block.projection {
            check(c)?;
        }
        for j in &block.joins {
            check(&j.left)?;
            check(&j.right)?;
        }
        for s in &block.selections {
            check(s.col())?;
        }
        Ok(())
    }
}

fn parse_op(o: &str) -> Result<CmpOp, ParseError> {
    Ok(match o {
        "=" => CmpOp::Eq,
        "<>" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(ParseError::new(format!("unknown operator `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q_INF: &str = "SELECT DISTINCT actors.name \
        FROM movies, actors, companies, roles \
        WHERE movies.title = roles.movie AND \
        actors.name = roles.actor AND \
        movies.company = companies.name AND \
        companies.country = 'USA' AND \
        movies.year = 2007";

    #[test]
    fn parse_running_example() {
        let q = parse_query(Q_INF).unwrap();
        assert_eq!(q.blocks.len(), 1);
        let b = &q.blocks[0];
        assert!(b.distinct);
        assert_eq!(b.tables.len(), 4);
        assert_eq!(b.joins.len(), 3);
        assert_eq!(b.selections.len(), 2);
        assert_eq!(b.projection, vec![ColRef::new("actors", "name")]);
        assert_eq!(q.join_width(), 4);
    }

    #[test]
    fn parse_union() {
        let q =
            parse_query("SELECT a.x FROM a WHERE a.y = 1 UNION SELECT b.x FROM b WHERE b.y > 2")
                .unwrap();
        assert_eq!(q.blocks.len(), 2);
        assert!(q.is_union());
        assert!(!q.blocks[0].distinct);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let err = parse_query("SELECT a.x FROM a UNION SELECT b.x, b.y FROM b").unwrap_err();
        assert!(err.message.contains("arities"));
    }

    #[test]
    fn parse_aliases() {
        let q =
            parse_query("SELECT m1.title FROM movies m1, movies AS m2 WHERE m1.title = m2.title")
                .unwrap();
        let b = &q.blocks[0];
        assert_eq!(b.tables[0].alias, "m1");
        assert_eq!(b.tables[1].alias, "m2");
        assert_eq!(b.tables[1].table, "movies");
    }

    #[test]
    fn duplicate_alias_rejected() {
        let err = parse_query("SELECT movies.title FROM movies, movies").unwrap_err();
        assert!(err.message.contains("duplicate table alias"));
    }

    #[test]
    fn like_prefix() {
        let q = parse_query("SELECT actors.name FROM actors WHERE actors.name LIKE 'B%'").unwrap();
        assert_eq!(
            q.blocks[0].selections[0],
            Selection::StartsWith {
                col: ColRef::new("actors", "name"),
                prefix: "B".into()
            }
        );
    }

    #[test]
    fn like_non_prefix_rejected() {
        assert!(parse_query("SELECT a.x FROM a WHERE a.x LIKE '%B'").is_err());
        assert!(parse_query("SELECT a.x FROM a WHERE a.x LIKE 'B_c%'").is_err());
    }

    #[test]
    fn column_comparisons_other_than_eq_rejected() {
        let err = parse_query("SELECT a.x FROM a, b WHERE a.x < b.y").unwrap_err();
        assert!(err.message.contains("must use `=`"));
    }

    #[test]
    fn unknown_alias_rejected() {
        let err = parse_query("SELECT z.x FROM a").unwrap_err();
        assert!(err.message.contains("unknown table alias"));
    }

    #[test]
    fn unqualified_column_rejected() {
        assert!(parse_query("SELECT x FROM a").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_query("SELECT a.x FROM a WHERE a.y = 1 42").unwrap_err();
        assert!(err.message.contains("trailing input"));
    }

    #[test]
    fn semicolon_accepted() {
        assert!(parse_query("SELECT a.x FROM a;").is_ok());
    }

    #[test]
    fn join_conditions_canonicalized() {
        let q1 = parse_query("SELECT a.x FROM a, b WHERE a.x = b.y").unwrap();
        let q2 = parse_query("SELECT a.x FROM a, b WHERE b.y = a.x").unwrap();
        assert_eq!(q1.blocks[0].joins, q2.blocks[0].joins);
    }

    #[test]
    fn all_comparison_ops_parse() {
        for op in ["=", "<>", "<", "<=", ">", ">=", "!="] {
            let sql = format!("SELECT a.x FROM a WHERE a.y {op} 3");
            assert!(parse_query(&sql).is_ok(), "op {op} failed");
        }
    }
}
