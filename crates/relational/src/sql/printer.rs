//! Canonical SQL rendering of [`Query`] values.
//!
//! The printer emits exactly the dialect the parser accepts, so
//! `parse(print(q)) == q` for every query the parser can produce (covered by a
//! property test in the crate root).

use crate::algebra::{Query, SpjBlock};

/// Render a query as canonical SQL text.
pub fn to_sql(q: &Query) -> String {
    let mut out = String::new();
    for (i, b) in q.blocks.iter().enumerate() {
        if i > 0 {
            out.push_str(" UNION ");
        }
        block_sql(b, &mut out);
    }
    out
}

fn block_sql(b: &SpjBlock, out: &mut String) {
    out.push_str("SELECT ");
    if b.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, c) in b.projection.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&c.to_string());
    }
    out.push_str(" FROM ");
    for (i, t) in b.tables.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.table);
        if t.alias != t.table {
            out.push(' ');
            out.push_str(&t.alias);
        }
    }
    let conds: Vec<String> = b
        .joins
        .iter()
        .map(ToString::to_string)
        .chain(b.selections.iter().map(ToString::to_string))
        .collect();
    if !conds.is_empty() {
        out.push_str(" WHERE ");
        out.push_str(&conds.join(" AND "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_query;

    #[test]
    fn print_parse_roundtrip() {
        let sql = "SELECT DISTINCT actors.name FROM movies, actors, roles \
                   WHERE actors.name = roles.actor AND movies.title = roles.movie \
                   AND movies.year = 2007";
        let q = parse_query(sql).unwrap();
        let printed = to_sql(&q);
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn union_roundtrip() {
        let sql = "SELECT a.x FROM a WHERE a.y = 1 UNION SELECT b.x FROM b";
        let q = parse_query(sql).unwrap();
        assert_eq!(parse_query(&to_sql(&q)).unwrap(), q);
    }

    #[test]
    fn alias_roundtrip() {
        let sql = "SELECT m1.title FROM movies m1, movies m2 WHERE m1.title = m2.title";
        let q = parse_query(sql).unwrap();
        let printed = to_sql(&q);
        assert!(printed.contains("movies m1"));
        assert_eq!(parse_query(&printed).unwrap(), q);
    }

    #[test]
    fn no_where_clause() {
        let q = parse_query("SELECT a.x FROM a").unwrap();
        assert_eq!(to_sql(&q), "SELECT a.x FROM a");
    }

    #[test]
    fn string_literals_escaped() {
        let q = parse_query("SELECT a.x FROM a WHERE a.n = 'O''Hara'").unwrap();
        let printed = to_sql(&q);
        assert!(printed.contains("'O''Hara'"));
        assert_eq!(parse_query(&printed).unwrap(), q);
    }

    #[test]
    fn like_printed() {
        let q = parse_query("SELECT a.x FROM a WHERE a.x LIKE 'B%'").unwrap();
        assert!(to_sql(&q).contains("LIKE 'B%'"));
    }
}
