//! Compact rows of interned value ids.
//!
//! [`IdRow`] is the engine's row representation: a small-vector of
//! [`ValueId`]s that stays inline (no heap allocation) up to eight columns —
//! covering every table and projection the DBShap workloads use — and spills
//! to a boxed slice beyond that. Equality, hashing and ordering go through
//! the logical id slice, so the two representations are indistinguishable.

use crate::value::ValueId;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Columns stored inline before spilling to the heap.
pub const INLINE_COLS: usize = 8;

/// A compact row (or key) of interned value ids.
#[derive(Debug, Clone)]
pub struct IdRow(Repr);

#[derive(Debug, Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [ValueId; INLINE_COLS],
    },
    Heap(Box<[ValueId]>),
}

impl IdRow {
    /// The empty row.
    pub fn new() -> Self {
        IdRow(Repr::Inline {
            len: 0,
            buf: [ValueId(0); INLINE_COLS],
        })
    }

    /// Build from a slice of ids.
    pub fn from_slice(ids: &[ValueId]) -> Self {
        if ids.len() <= INLINE_COLS {
            let mut buf = [ValueId(0); INLINE_COLS];
            buf[..ids.len()].copy_from_slice(ids);
            IdRow(Repr::Inline {
                len: ids.len() as u8,
                buf,
            })
        } else {
            IdRow(Repr::Heap(ids.into()))
        }
    }

    /// Append one id (spilling to the heap past [`INLINE_COLS`]).
    pub fn push(&mut self, id: ValueId) {
        match &mut self.0 {
            Repr::Inline { len, buf } if (*len as usize) < INLINE_COLS => {
                buf[*len as usize] = id;
                *len += 1;
            }
            Repr::Inline { len, buf } => {
                let mut v: Vec<ValueId> = buf[..*len as usize].to_vec();
                v.push(id);
                self.0 = Repr::Heap(v.into());
            }
            Repr::Heap(b) => {
                let mut v = std::mem::take(b).into_vec();
                v.push(id);
                *b = v.into();
            }
        }
    }

    /// The ids as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[ValueId] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id at column `i`, if in range.
    pub fn get(&self, i: usize) -> Option<ValueId> {
        self.as_slice().get(i).copied()
    }

    /// Iterate over the ids.
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl Default for IdRow {
    fn default() -> Self {
        IdRow::new()
    }
}

impl PartialEq for IdRow {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for IdRow {}

impl Hash for IdRow {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Ordering over the raw id slice — interning order, **not** value order;
/// usable for deterministic keying (e.g. interned witness sets), not for
/// value-sorted output.
impl PartialOrd for IdRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdRow {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl FromIterator<ValueId> for IdRow {
    fn from_iter<I: IntoIterator<Item = ValueId>>(iter: I) -> Self {
        let mut row = IdRow::new();
        for id in iter {
            row.push(id);
        }
        row
    }
}

impl From<&[ValueId]> for IdRow {
    fn from(ids: &[ValueId]) -> Self {
        IdRow::from_slice(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().copied().map(ValueId).collect()
    }

    #[test]
    fn inline_roundtrip() {
        let r = IdRow::from_slice(&ids(&[3, 1, 4]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.as_slice(), ids(&[3, 1, 4]).as_slice());
        assert_eq!(r.get(1), Some(ValueId(1)));
        assert_eq!(r.get(3), None);
        assert!(!r.is_empty());
        assert!(IdRow::new().is_empty());
    }

    #[test]
    fn spills_past_inline_capacity() {
        let wide: Vec<ValueId> = (0..12).map(ValueId).collect();
        let r = IdRow::from_slice(&wide);
        assert_eq!(r.len(), 12);
        assert_eq!(r.as_slice(), wide.as_slice());
        // Push-built rows agree with slice-built rows across the spill point.
        let mut p = IdRow::new();
        for &id in &wide {
            p.push(id);
        }
        assert_eq!(p, r);
        let mut p2 = p.clone();
        p2.push(ValueId(99));
        assert_eq!(p2.len(), 13);
        assert_eq!(p2.get(12), Some(ValueId(99)));
    }

    #[test]
    fn equality_ignores_representation() {
        let inline = IdRow::from_slice(&ids(&[1, 2]));
        let from_iter: IdRow = ids(&[1, 2]).into_iter().collect();
        assert_eq!(inline, from_iter);
        assert_ne!(inline, IdRow::from_slice(&ids(&[1, 2, 3])));
        use std::collections::hash_map::DefaultHasher;
        let h = |r: &IdRow| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&inline), h(&from_iter));
    }

    #[test]
    fn ordering_is_slicewise() {
        assert!(IdRow::from_slice(&ids(&[1])) < IdRow::from_slice(&ids(&[1, 0])));
        assert!(IdRow::from_slice(&ids(&[2])) > IdRow::from_slice(&ids(&[1, 9])));
    }
}
