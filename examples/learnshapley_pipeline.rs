//! The full LearnShapley pipeline on a small DBShap instance.
//!
//! Builds a DBShap-style benchmark over the synthetic IMDB database
//! (query log → provenance evaluation → exact Shapley ground truth →
//! 70/10/20 split), pre-trains on the three similarity objectives,
//! fine-tunes on Shapley regression, and compares the learned ranker against
//! the Nearest Queries baselines on held-out test queries — a miniature of
//! the paper's Table 3.
//!
//! ```text
//! cargo run --release --example learnshapley_pipeline
//! ```

use learnshapley::prelude::*;
use std::time::Instant;

fn main() {
    // ---- offline: build the benchmark --------------------------------------
    let start = Instant::now();
    let db = generate_imdb(&ImdbConfig::default());
    let ds = Dataset::build(
        db,
        &imdb_spec(),
        &DatasetConfig {
            query_gen: QueryGenConfig {
                num_queries: 24,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let train = ds.split_indices(Split::Train);
    let dev = ds.split_indices(Split::Dev);
    let test = ds.split_indices(Split::Test);
    println!(
        "DBShap instance: {} queries (train {} / dev {} / test {}), built in {:?}",
        ds.queries.len(),
        train.len(),
        dev.len(),
        test.len(),
        start.elapsed()
    );

    // Pre-training targets: the three pairwise similarity matrices.
    let start = Instant::now();
    let ms = similarity_matrices(&ds, &RankSimOptions::default());
    println!("similarity matrices in {:?}", start.elapsed());

    // ---- train LearnShapley -------------------------------------------------
    let cfg = PipelineConfig {
        encoder: EncoderKind::Base,
        pretrain: Some(PretrainObjectives::default()),
        pretrain_cfg: TrainConfig {
            epochs: 3,
            max_samples_per_epoch: 400,
            ..Default::default()
        },
        finetune_cfg: TrainConfig {
            epochs: 4,
            max_samples_per_epoch: 600,
            ..Default::default()
        },
        max_vocab: 2000,
    };
    let start = Instant::now();
    let trained = train_learnshapley(&ds, Some(&ms), &train, &cfg);
    println!(
        "trained LearnShapley-base in {:?} (pre-train best epoch {}, fine-tune best dev NDCG {:.3})",
        start.elapsed(),
        trained.pretrain.map(|r| r.best_epoch).unwrap_or(0),
        trained.finetune.best_dev_ndcg,
    );

    // ---- evaluate against the baselines -------------------------------------
    let ls = evaluate_model(&trained.model, &trained.tokenizer, &ds, &test, 64);
    println!(
        "\n{:<28} {:>8} {:>6} {:>6} {:>6}",
        "method", "NDCG@10", "p@1", "p@3", "p@5"
    );
    println!(
        "{:<28} {:>8.3} {:>6.3} {:>6.3} {:>6.3}",
        "LearnShapley-base", ls.ndcg10, ls.p1, ls.p3, ls.p5
    );
    for metric in [NqMetric::Syntax, NqMetric::Witness] {
        let nq = NearestQueries::fit(&ds, &train, metric, 3);
        let mut summary = ls_core::EvalSummary::default();
        for &qi in &test {
            let q = &ds.queries[qi];
            let probe = QueryProbe {
                query: &q.query,
                result: &q.result,
                tuple_scores: None,
            };
            for t in &q.tuples {
                let lineage: Vec<FactId> = t.shapley.keys().copied().collect();
                summary.add(&nq.predict(&probe, &lineage), &t.shapley);
            }
        }
        let s = summary.finish();
        println!(
            "{:<28} {:>8.3} {:>6.3} {:>6.3} {:>6.3}",
            format!("NearestQueries-{}", metric.label()),
            s.ndcg10,
            s.p1,
            s.p3,
            s.p5
        );
    }

    // ---- deployment: explain a brand-new query ------------------------------
    let probe_q = &ds.queries[test[0]];
    let tuple_rec = &probe_q.tuples[0];
    let tuple = &probe_q.result.tuples[tuple_rec.tuple_idx];
    let lineage: Vec<FactId> = tuple_rec.shapley.keys().copied().collect();
    let ranking = rank_lineage(
        &trained.model,
        &trained.tokenizer,
        &ds.db,
        &probe_q.sql,
        tuple,
        &lineage,
        64,
    );
    println!(
        "\ndeployment demo — ranking the lineage of {}:",
        tuple.value_string()
    );
    for (i, f) in ranking.iter().take(5).enumerate() {
        let (table, row) = ds.db.fact(*f).unwrap();
        let gold_rank = ls_shapley::rank_descending(&tuple_rec.shapley)
            .iter()
            .position(|x| x == f)
            .unwrap()
            + 1;
        let label: String = format!("{table} {row}").chars().take(48).collect();
        println!(
            "  predicted #{:<2} (gold #{:<2}) {}",
            i + 1,
            gold_rank,
            label
        );
    }
    println!("\nnote: inference used only the query text, the tuple and its lineage —");
    println!("no provenance was captured at deployment time.");
}
