//! Inside the exact-Shapley machinery: provenance → circuit → counting.
//!
//! Walks the knowledge-compilation pipeline on the paper's running example:
//! Boolean provenance in DNF, compilation to a decision-DNNF (with the
//! disjoint-OR and common-factor optimizations visible in the stats),
//! Graphviz export, cardinality-resolved model counting, and the Shapley
//! values assembled from the counts.
//!
//! ```text
//! cargo run --release --example provenance_circuits [out.dot]
//! ```

use learnshapley::prelude::*;
use learnshapley::provenance::{circuit_to_dot, VarOrder};
use learnshapley::relational::Monomial;

fn main() {
    // Prov(D, q_inf, Alice) from the paper's Example 2.1.
    let prov = Dnf::from_monomials(vec![
        Monomial::from_facts(vec![FactId(0), FactId(1), FactId(4), FactId(6)]),
        Monomial::from_facts(vec![FactId(0), FactId(2), FactId(4), FactId(7)]),
        Monomial::from_facts(vec![FactId(0), FactId(3), FactId(5), FactId(8)]),
    ]);
    println!("provenance (DNF): {prov}");
    println!(
        "lineage: {} facts, {} derivations\n",
        prov.variables().len(),
        prov.len()
    );

    // Compile under the default heuristics and the ablation configurations.
    for (label, opts) in [
        (
            "default (most-frequent + factoring + disjoint-OR)",
            CompileOptions::default(),
        ),
        (
            "lexicographic variable order",
            CompileOptions {
                var_order: VarOrder::Lexicographic,
                ..Default::default()
            },
        ),
        (
            "no disjoint-OR decomposition",
            CompileOptions {
                disable_or_decomposition: true,
                ..Default::default()
            },
        ),
    ] {
        let c = compile(&prov, opts);
        println!(
            "{label}: {} nodes, {} decisions, {} cache hits",
            c.stats.nodes, c.stats.decisions, c.stats.cache_hits
        );
    }

    let compiled = compile(&prov, CompileOptions::default());
    compiled
        .circuit
        .check_invariants(compiled.root)
        .expect("decomposability/determinism invariants");

    // Cardinality-resolved model counting — the primitive behind Shapley.
    let universe = prov.variables();
    let counts = compiled
        .circuit
        .count_by_size(compiled.root, &universe, None);
    println!("\nsatisfying assignments by number of present facts:");
    for (k, c) in counts.iter().enumerate() {
        let v = c.to_f64();
        if v > 0.0 {
            println!("  |E| = {k}: {v}");
        }
    }
    let total = compiled.circuit.count_models(compiled.root, &universe);
    println!("total models: {total} of 2^{} subsets", universe.len());

    // Shapley values assembled from conditioned counts.
    let scores = shapley_values(&prov);
    println!("\nexact Shapley values:");
    for f in rank_descending(&scores) {
        println!("  {f}: {:.6}", scores[&f]);
    }
    println!(
        "\nΣ = {:.6} (efficiency axiom: the derivable tuple distributes 1.0)",
        scores.values().sum::<f64>()
    );

    // Graphviz export.
    let dot = circuit_to_dot(&compiled.circuit, compiled.root);
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "circuit.dot".into());
    match std::fs::write(&path, &dot) {
        Ok(()) => println!("\ncircuit written to {path} (render: dot -Tsvg {path})"),
        Err(e) => println!("\ncould not write {path}: {e}\n{dot}"),
    }
}
