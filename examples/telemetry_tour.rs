//! A guided tour of the ls-obs telemetry layer.
//!
//! Runs a miniature of every instrumented stage — query evaluation,
//! provenance compilation, exact + sampled Shapley, DBShap generation,
//! training and inference — with the stderr span reporter turned on, then
//! prints the final metrics summary (counters, gauges, histograms with
//! p50/p90/p99, throughput meters).
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! LS_OBS=trace cargo run --release --example telemetry_tour   # span opens too
//! LS_OBS_JSONL=/tmp/tour.jsonl cargo run --release --example telemetry_tour
//! ```

use learnshapley::obs;
use learnshapley::prelude::*;

fn main() {
    // Show span closes by default; an explicit LS_OBS choice wins.
    if std::env::var_os("LS_OBS").is_none() {
        obs::set_level(obs::Level::Spans);
    }

    // ---- 1. query evaluation (relational.*) --------------------------------
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[
            ("title", ColType::Str),
            ("year", ColType::Int),
            ("company", ColType::Str),
        ],
    ));
    db.create_table(TableSchema::new(
        "companies",
        &[("name", ColType::Str), ("country", ColType::Str)],
    ));
    for (title, year, company) in [
        ("Superman", 2007, "Universal"),
        ("Batman", 2007, "Universal"),
        ("Spiderman", 2007, "Warner"),
        ("Aquaman", 2006, "Warner"),
    ] {
        db.insert(
            "movies",
            vec![title.into(), i64::from(year).into(), company.into()],
        );
    }
    for (name, country) in [("Universal", "USA"), ("Warner", "USA"), ("Sony", "Japan")] {
        db.insert("companies", vec![name.into(), country.into()]);
    }
    let q = parse_query(
        "SELECT movies.title FROM movies, companies \
         WHERE movies.company = companies.name AND companies.country = 'USA' \
         AND movies.year = 2007",
    )
    .expect("query parses");
    let result = evaluate(&db, &q).expect("query evaluates");
    println!(
        "1. evaluated `{}` → {} tuples",
        to_sql(&q),
        result.tuples.len()
    );

    // ---- 2. provenance compilation + Shapley (provenance.*, shapley.*) -----
    let tuple = &result.tuples[0];
    let prov = Dnf::of_tuple(tuple);
    let compiled = compile(&prov, CompileOptions::default());
    let exact = shapley_values(&prov);
    let sampled = shapley_values_sampled(&prov, 200, 7);
    println!(
        "2. compiled provenance of {} ({} circuit nodes); exact Shapley over {} facts, \
         sampled over {}",
        tuple.value_string(),
        compiled.stats.nodes,
        exact.len(),
        sampled.len(),
    );

    // ---- 3. DBShap generation (dbshap.*) -----------------------------------
    let academic = generate_academic(&AcademicConfig::default());
    let ds = Dataset::build(
        academic,
        &academic_spec(),
        &DatasetConfig {
            query_gen: QueryGenConfig {
                num_queries: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let train = ds.split_indices(Split::Train);
    let ms = similarity_matrices(&ds, &RankSimOptions::default());
    println!(
        "3. built a {}-query DBShap instance ({} train)",
        ds.queries.len(),
        train.len()
    );

    // ---- 4. training (core.pretrain/finetune, nn.forward/backward) ---------
    let cfg = PipelineConfig {
        encoder: EncoderKind::SmallAblation,
        pretrain: Some(PretrainObjectives::default()),
        pretrain_cfg: TrainConfig {
            epochs: 1,
            max_samples_per_epoch: 60,
            ..Default::default()
        },
        finetune_cfg: TrainConfig {
            epochs: 2,
            max_samples_per_epoch: 120,
            ..Default::default()
        },
        max_vocab: 1200,
    };
    let trained = train_learnshapley(&ds, Some(&ms), &train, &cfg);
    println!(
        "4. trained a small model (fine-tune best dev NDCG@10 {:.3})",
        trained.finetune.best_dev_ndcg
    );

    // ---- 5. inference (core.inference.*) -----------------------------------
    let probe = &ds.queries[train[0]];
    let rec = &probe.tuples[0];
    let out_tuple = &probe.result.tuples[rec.tuple_idx];
    let lineage: Vec<FactId> = rec.shapley.keys().copied().collect();
    let scores = predict_scores(
        &trained.model,
        &trained.tokenizer,
        &ds.db,
        &probe.sql,
        out_tuple,
        &lineage,
        64,
    );
    println!(
        "5. scored the {}-fact lineage of {}",
        scores.len(),
        out_tuple.value_string()
    );

    // ---- final summary -----------------------------------------------------
    println!("\nfinal metrics summary (also at process exit with LS_OBS=summary):\n");
    println!("{}", obs::summary());
}
