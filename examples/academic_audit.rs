//! Auditing an Academic-style analytics query (the paper's Figure 8a).
//!
//! Generates the Academic-like database, runs a 6-way join asking which
//! research domains have recent publications from a given university, and
//! ranks the contributing facts for one domain — the "why is Software
//! Engineering in this list?" question of §4.
//!
//! ```text
//! cargo run --release --example academic_audit
//! ```

use learnshapley::prelude::*;

fn main() {
    let db = generate_academic(&AcademicConfig::default());
    println!(
        "synthetic Academic DB: {} facts, tables {:?}\n",
        db.fact_count(),
        db.table_names()
    );

    // Pick an organization with prolific authors so the join is non-empty.
    let org = db
        .decoded_rows("author")
        .max_by_key(|r| r.values[3].as_int().unwrap_or(0))
        .map(|r| r.values[1].as_str().unwrap().to_owned())
        .expect("authors exist");

    let sql = format!(
        "SELECT DISTINCT domain.name \
         FROM author, writes, publication, conference, domain_conference, domain \
         WHERE author.name = writes.author AND writes.pub = publication.title \
         AND publication.conf = conference.name \
         AND conference.name = domain_conference.conf \
         AND domain_conference.domain = domain.name \
         AND author.org = '{org}' AND publication.year > 2010"
    );
    let q = parse_query(&sql).unwrap();
    println!(
        "audit query (joins {} tables):\n  {}\n",
        q.join_width(),
        to_sql(&q)
    );

    let result = evaluate(&db, &q).unwrap();
    println!("domains with recent {org} publications:");
    for t in &result.tuples {
        println!(
            "  {} — {} facts contribute",
            t.value_string(),
            t.lineage().len()
        );
    }

    // Deep-dive on the domain with the largest lineage.
    let tuple = result
        .tuples
        .iter()
        .max_by_key(|t| t.lineage().len())
        .expect("non-empty result");
    println!("\nwhy is {} in the answer?", tuple.value_string());
    let prov = Dnf::of_tuple(tuple);
    let scores = shapley_values(&prov);
    let total: f64 = scores.values().sum();
    println!(
        "lineage: {} facts, {} derivations, Σ Shapley = {total:.6} (efficiency)",
        scores.len(),
        prov.len()
    );
    println!("\ntop contributing facts:");
    for (i, f) in rank_descending(&scores).into_iter().take(8).enumerate() {
        let (table, row) = db.fact(f).unwrap();
        let label: String = format!("{table} {row}").chars().take(64).collect();
        println!("  {:>2}. [{:.4}] {}", i + 1, scores[&f], label);
    }

    // Compare against the fast inexact proxy — does it keep the leader?
    let proxy = cnf_proxy_scores(&prov);
    let exact_top = rank_descending(&scores)[0];
    let proxy_top = rank_descending(&proxy)[0];
    println!(
        "\nCNF Proxy agrees on the top fact: {}",
        if exact_top == proxy_top { "yes" } else { "no" }
    );
}
