//! Explaining query answers over a realistic movie database.
//!
//! Generates the synthetic IMDB-like database, runs a join query, and
//! explains one output tuple four different ways: exact Shapley (knowledge
//! compilation), permutation sampling, the CNF Proxy heuristic, and Banzhaf
//! values — then compares the three query-similarity metrics on a family of
//! related queries (the paper's Examples 2.3, 2.4 and 3.1 in the wild).
//!
//! ```text
//! cargo run --release --example movie_explanations
//! ```

use learnshapley::prelude::*;
use std::time::Instant;

fn main() {
    let db = generate_imdb(&ImdbConfig::default());
    println!(
        "synthetic IMDB: {} facts across tables {:?}\n",
        db.fact_count(),
        db.table_names()
    );

    // Which actors appear in movies of American companies?
    let q = parse_query(
        "SELECT DISTINCT actors.name FROM movies, actors, companies, roles \
         WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
         movies.company = companies.name AND companies.country = 'USA'",
    )
    .unwrap();
    let result = evaluate(&db, &q).unwrap();
    println!("query returns {} actors", result.len());

    // Explain the answer with the richest provenance.
    let tuple = result
        .tuples
        .iter()
        .max_by_key(|t| t.derivations.len())
        .expect("non-empty result");
    println!(
        "\nexplaining {} — {} derivations, {} facts in lineage",
        tuple.value_string(),
        tuple.derivations.len(),
        tuple.lineage().len()
    );
    let prov = Dnf::of_tuple(tuple);

    let start = Instant::now();
    let exact = shapley_values(&prov);
    let exact_time = start.elapsed();
    let start = Instant::now();
    let sampled = shapley_values_sampled(&prov, 2000, 42);
    let sampled_time = start.elapsed();
    let start = Instant::now();
    let proxy = cnf_proxy_scores(&prov);
    let proxy_time = start.elapsed();
    let start = Instant::now();
    let banzhaf = banzhaf_values(&prov);
    let banzhaf_time = start.elapsed();

    println!("\ntop-5 facts by each attribution method:");
    println!(
        "{:<44} {:>8} {:>8} {:>8} {:>8}",
        "fact", "exact", "sampled", "proxy", "banzhaf"
    );
    for f in rank_descending(&exact).into_iter().take(5) {
        let (table, row) = db.fact(f).unwrap();
        let label: String = format!("{table} {row}").chars().take(42).collect();
        println!(
            "{:<44} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            label, exact[&f], sampled[&f], proxy[&f], banzhaf[&f]
        );
    }
    println!(
        "\ntimings: exact {exact_time:?}, sampled {sampled_time:?}, \
         proxy {proxy_time:?}, banzhaf {banzhaf_time:?}"
    );

    // ---- Query similarity on a mutated family ------------------------------
    let variants = [
        (
            "projection swap (≈ q3)",
            "SELECT DISTINCT actors.age FROM movies, actors, companies, roles \
          WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
          movies.company = companies.name AND companies.country = 'USA'",
        ),
        (
            "extra predicate (≈ q1)",
            "SELECT DISTINCT actors.name FROM movies, actors, companies, roles \
          WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
          movies.company = companies.name AND companies.country = 'USA' AND \
          actors.age > 40",
        ),
        (
            "different country",
            "SELECT DISTINCT actors.name FROM movies, actors, companies, roles \
          WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
          movies.company = companies.name AND companies.country = 'Japan'",
        ),
    ];
    println!("\nsimilarity of q to its variants (syntax / witness / rank):");
    for (label, sql) in variants {
        let v = parse_query(sql).unwrap();
        let v_result = evaluate(&db, &v).unwrap();
        let sim_s = syntax_similarity(&q, &v);
        let sim_w = witness_similarity(&result, &v_result);

        // Rank-based similarity needs per-tuple Shapley rankings.
        let scores_of = |r: &ls_relational::QueryResult| -> Vec<FactScores> {
            r.tuples
                .iter()
                .take(6)
                .map(|t| shapley_values(&Dnf::of_tuple(t)))
                .collect()
        };
        let sim_r = rank_based_similarity(
            &scores_of(&result),
            &scores_of(&v_result),
            &RankSimOptions::default(),
        );
        println!("  {label:<26} {sim_s:.3} / {sim_w:.3} / {sim_r:.3}");
    }
    println!(
        "\nnote the projection swap: witness similarity collapses to ~0 while \
         rank-based similarity stays high — the gap the paper's novel metric closes."
    );
}
