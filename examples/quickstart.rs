//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure-1 movie database, runs `q_inf` ("actors in 2007 movies
//! produced by American companies"), inspects provenance and lineage, and
//! computes exact Shapley values — reproducing the hand-derived numbers of
//! Example 2.2 (`Shapley(c1) = 10/63`, `Shapley(c2) = 19/252`).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use learnshapley::prelude::*;

fn main() {
    // ---- Figure 1: the movie database -------------------------------------
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[
            ("title", ColType::Str),
            ("year", ColType::Int),
            ("company", ColType::Str),
        ],
    ));
    db.create_table(TableSchema::new(
        "actors",
        &[("name", ColType::Str), ("age", ColType::Int)],
    ));
    db.create_table(TableSchema::new(
        "companies",
        &[("name", ColType::Str), ("country", ColType::Str)],
    ));
    db.create_table(TableSchema::new(
        "roles",
        &[("actor", ColType::Str), ("movie", ColType::Str)],
    ));
    for (title, year, company) in [
        ("Superman", 2007, "Universal"),
        ("Batman", 2007, "Universal"),
        ("Spiderman", 2007, "Warner"),
        ("Aquaman", 2006, "Warner"),
    ] {
        db.insert(
            "movies",
            vec![title.into(), i64::from(year).into(), company.into()],
        );
    }
    for (name, age) in [("Alice", 45), ("Bob", 30), ("Carol", 38), ("David", 23)] {
        db.insert("actors", vec![name.into(), i64::from(age).into()]);
    }
    for (name, country) in [("Universal", "USA"), ("Warner", "USA"), ("Sony", "Japan")] {
        db.insert("companies", vec![name.into(), country.into()]);
    }
    for (actor, movie) in [
        ("Alice", "Superman"),
        ("Alice", "Batman"),
        ("Alice", "Spiderman"),
        ("Bob", "Batman"),
        ("Carol", "Aquaman"),
        ("David", "Spiderman"),
    ] {
        db.insert("roles", vec![actor.into(), movie.into()]);
    }

    // ---- Figure 2a: q_inf --------------------------------------------------
    let q_inf = parse_query(
        "SELECT DISTINCT actors.name FROM movies, actors, companies, roles \
         WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
         movies.company = companies.name AND companies.country = 'USA' AND \
         movies.year = 2007",
    )
    .expect("q_inf parses");
    println!("q_inf: {}\n", to_sql(&q_inf));

    let result = evaluate(&db, &q_inf).expect("q_inf evaluates");
    println!("output tuples:");
    for t in &result.tuples {
        println!(
            "  {}  — {} derivation(s), lineage of {} facts",
            t.value_string(),
            t.derivations.len(),
            t.lineage().len()
        );
    }

    // ---- Example 2.1/2.2: provenance and exact Shapley for Alice ----------
    let alice = result
        .tuple(&[Value::from("Alice")])
        .expect("Alice is an answer");
    let prov = Dnf::of_tuple(alice);
    println!("\nProv(D, q_inf, Alice) = {prov}");

    let scores = shapley_values(&prov);
    println!("\nexact Shapley values of Alice's lineage:");
    for (i, f) in rank_descending(&scores).into_iter().enumerate() {
        let (table, row) = db.fact(f).expect("fact exists");
        let label = format!("{table} {row}");
        println!("  #{:<2} {:<36} = {:.4}", i + 1, label, scores[&f]);
    }

    // The hand-derived values of Example 2.2.
    let universal = find_fact(&db, "companies", "Universal");
    let warner = find_fact(&db, "companies", "Warner");
    let c1 = scores[&universal];
    let c2 = scores[&warner];
    println!(
        "\nShapley(c1=Universal) = {c1:.6}  (paper: 10/63 ≈ {:.6})",
        10.0 / 63.0
    );
    println!(
        "Shapley(c2=Warner)    = {c2:.6}  (paper: 19/252 ≈ {:.6})",
        19.0 / 252.0
    );
    assert!((c1 - 10.0 / 63.0).abs() < 1e-9);
    assert!((c2 - 19.0 / 252.0).abs() < 1e-9);
    println!("\n✓ exact reproduction of Example 2.2");
}

/// Find the fact id of the row of `table` whose first column equals `key`.
fn find_fact(db: &Database, table: &str, key: &str) -> FactId {
    let row = db
        .decoded_rows(table)
        .find(|r| r.values[0].as_str() == Some(key))
        .expect("row exists");
    row.fact
}
