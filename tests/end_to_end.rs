//! End-to-end integration tests spanning every crate: dataset construction,
//! ground-truth invariants, training, inference, baselines and metrics — the
//! full Figure-6 + Figure-4 pipeline at smoke-test scale.

use learnshapley::prelude::*;
use ls_core::EvalSummary;

fn small_dataset() -> Dataset {
    let db = generate_imdb(&ImdbConfig {
        companies: 10,
        actors: 50,
        movies: 60,
        roles_per_movie: 2,
        seed: 31,
    });
    Dataset::build(
        db,
        &imdb_spec(),
        &DatasetConfig {
            query_gen: QueryGenConfig {
                num_queries: 14,
                seed: 5,
                ..Default::default()
            },
            max_tuples_per_query: 5,
            max_lineage: 30,
            ..Default::default()
        },
    )
}

#[test]
fn dataset_ground_truth_is_exact_and_normalized() {
    let ds = small_dataset();
    let mut checked = 0usize;
    for q in &ds.queries {
        for t in &q.tuples {
            let tuple = &q.result.tuples[t.tuple_idx];
            // Ground truth covers exactly the lineage.
            let lineage = tuple.lineage();
            assert_eq!(t.shapley.len(), lineage.len());
            // Efficiency.
            let total: f64 = t.shapley.values().sum();
            assert!((total - 1.0).abs() < 1e-6);
            // Cross-check vs brute force on small lineages.
            if lineage.len() <= 14 {
                let brute = ls_shapley::shapley_values_bruteforce(&Dnf::of_tuple(tuple));
                for (f, v) in &t.shapley {
                    assert!((brute[f] - v).abs() < 1e-9, "fact {f} mismatch");
                }
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 3,
        "need small lineages for the brute-force cross-check"
    );
}

#[test]
fn full_training_pipeline_and_baselines() {
    let ds = small_dataset();
    let train = ds.split_indices(Split::Train);
    let test = ds.split_indices(Split::Test);
    let ms = similarity_matrices(&ds, &RankSimOptions::default());

    // Train a tiny model for a single epoch (smoke test of every stage).
    let cfg = PipelineConfig {
        encoder: EncoderKind::SmallAblation,
        pretrain: Some(PretrainObjectives::default()),
        pretrain_cfg: TrainConfig {
            epochs: 1,
            max_samples_per_epoch: 40,
            ..Default::default()
        },
        finetune_cfg: TrainConfig {
            epochs: 1,
            max_samples_per_epoch: 60,
            ..Default::default()
        },
        max_vocab: 800,
    };
    let trained = train_learnshapley(&ds, Some(&ms), &train, &cfg);
    assert!(trained.pretrain.is_some());
    assert!(trained.finetune.samples > 0);

    let ls = evaluate_model(&trained.model, &trained.tokenizer, &ds, &test, 64);
    assert!(ls.pairs > 0);
    assert!((0.0..=1.0).contains(&ls.ndcg10));

    // Baselines run on the same protocol.
    for metric in [NqMetric::Syntax, NqMetric::Witness, NqMetric::Rank] {
        let nq = NearestQueries::fit(&ds, &train, metric, 3);
        let mut summary = EvalSummary::default();
        for &qi in &test {
            let q = &ds.queries[qi];
            let gold = q.tuple_scores();
            let probe = QueryProbe {
                query: &q.query,
                result: &q.result,
                tuple_scores: (metric == NqMetric::Rank).then_some(&gold[..]),
            };
            for t in &q.tuples {
                let lineage: Vec<FactId> = t.shapley.keys().copied().collect();
                summary.add(&nq.predict(&probe, &lineage), &t.shapley);
            }
        }
        let s = summary.finish();
        assert!(s.pairs == ls.pairs, "baselines must see the same pairs");
        assert!((0.0..=1.0).contains(&s.ndcg10));
    }
}

#[test]
fn oracle_prediction_achieves_perfect_metrics() {
    // Feeding the gold Shapley values through the evaluation machinery must
    // give NDCG@10 = p@k = 1 — a calibration check of the metric plumbing.
    let ds = small_dataset();
    let mut summary = EvalSummary::default();
    for qi in ds.split_indices(Split::Test) {
        for t in &ds.queries[qi].tuples {
            summary.add(&t.shapley, &t.shapley);
        }
    }
    let s = summary.finish();
    assert!((s.ndcg10 - 1.0).abs() < 1e-12);
    assert!((s.p1 - 1.0).abs() < 1e-12);
    assert!((s.p5 - 1.0).abs() < 1e-12);
}

#[test]
fn inference_requires_only_lineage() {
    // The deployment contract: predictions are produced from (sql, tuple,
    // lineage) alone — no provenance object is passed anywhere.
    let ds = small_dataset();
    let train = ds.split_indices(Split::Train);
    let cfg = PipelineConfig {
        encoder: EncoderKind::SmallAblation,
        pretrain: None,
        pretrain_cfg: TrainConfig {
            epochs: 1,
            ..Default::default()
        },
        finetune_cfg: TrainConfig {
            epochs: 1,
            max_samples_per_epoch: 30,
            ..Default::default()
        },
        max_vocab: 600,
    };
    let trained = train_learnshapley(&ds, None, &train, &cfg);
    let qi = ds.split_indices(Split::Test)[0];
    let q = &ds.queries[qi];
    let t = &q.tuples[0];
    let tuple = &q.result.tuples[t.tuple_idx];
    let lineage: Vec<FactId> = t.shapley.keys().copied().collect();
    let ranking = rank_lineage(
        &trained.model,
        &trained.tokenizer,
        &ds.db,
        &q.sql,
        tuple,
        &lineage,
        64,
    );
    let mut sorted = ranking.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted, lineage,
        "ranking must be a permutation of the lineage"
    );
}

#[test]
fn seen_unseen_split_is_meaningful() {
    let ds = small_dataset();
    let seen = ds.facts_in_split(Split::Train);
    let mut total = 0usize;
    let mut unseen = 0usize;
    for qi in ds.split_indices(Split::Test) {
        for t in &ds.queries[qi].tuples {
            for f in t.shapley.keys() {
                total += 1;
                if !seen.contains(f) {
                    unseen += 1;
                }
            }
        }
    }
    assert!(total > 0);
    // The paper reports 37.75% unseen at full log size; the synthetic setup
    // should land somewhere strictly between 0 and 100%.
    assert!(unseen > 0, "some facts should be unseen");
    assert!(unseen < total, "not all facts should be unseen");
}
