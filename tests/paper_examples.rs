//! Integration tests pinning the paper's worked examples across crates:
//! Figure 1/2 (database + queries), Example 2.2 (exact Shapley values),
//! Example 2.3 (syntax similarity 5/8), Example 2.4 (witness similarity),
//! and the §3.2 rank-similarity behaviour on projection-swapped queries.

use learnshapley::prelude::*;

/// The Figure-1 database (as used in the running examples).
fn figure1_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "movies",
        &[
            ("title", ColType::Str),
            ("year", ColType::Int),
            ("company", ColType::Str),
        ],
    ));
    db.create_table(TableSchema::new(
        "actors",
        &[("name", ColType::Str), ("age", ColType::Int)],
    ));
    db.create_table(TableSchema::new(
        "companies",
        &[("name", ColType::Str), ("country", ColType::Str)],
    ));
    db.create_table(TableSchema::new(
        "roles",
        &[("actor", ColType::Str), ("movie", ColType::Str)],
    ));
    for (t, y, c) in [
        ("Superman", 2007, "Universal"),
        ("Batman", 2007, "Universal"),
        ("Spiderman", 2007, "Warner"),
        ("Aquaman", 2006, "Warner"),
    ] {
        db.insert("movies", vec![t.into(), i64::from(y).into(), c.into()]);
    }
    for (n, a) in [("Alice", 45), ("Bob", 30), ("Carol", 38), ("David", 23)] {
        db.insert("actors", vec![n.into(), i64::from(a).into()]);
    }
    for (n, c) in [("Universal", "USA"), ("Warner", "USA"), ("Sony", "Japan")] {
        db.insert("companies", vec![n.into(), c.into()]);
    }
    for (a, m) in [
        ("Alice", "Superman"),
        ("Alice", "Batman"),
        ("Alice", "Spiderman"),
        ("Bob", "Batman"),
        ("Carol", "Aquaman"),
        ("David", "Spiderman"),
    ] {
        db.insert("roles", vec![a.into(), m.into()]);
    }
    db
}

const Q_INF: &str = "SELECT DISTINCT actors.name \
    FROM movies, actors, companies, roles \
    WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
    movies.company = companies.name AND companies.country = 'USA' AND \
    movies.year = 2007";

const Q_1: &str = "SELECT DISTINCT movies.title \
    FROM movies, actors, companies, roles \
    WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
    movies.company = companies.name AND companies.country = 'USA' AND \
    movies.year = 2007 AND actors.name = 'Alice'";

/// q3 of Figure 3: same computation as q_inf, different projection.
const Q_3: &str = "SELECT DISTINCT actors.age \
    FROM movies, actors, companies, roles \
    WHERE movies.title = roles.movie AND actors.name = roles.actor AND \
    movies.company = companies.name AND companies.country = 'USA' AND \
    movies.year = 2007";

#[test]
fn example_1_1_query_answers() {
    let db = figure1_db();
    let q = parse_query(Q_INF).unwrap();
    let res = evaluate(&db, &q).unwrap();
    let names: Vec<String> = res.tuples.iter().map(|t| t.values[0].to_string()).collect();
    assert_eq!(names, vec!["Alice", "Bob", "David"]);
}

#[test]
fn example_2_1_provenance_and_lineage() {
    let db = figure1_db();
    let q = parse_query(Q_INF).unwrap();
    let res = evaluate(&db, &q).unwrap();
    let alice = res.tuple(&[Value::from("Alice")]).unwrap();
    assert_eq!(alice.derivations.len(), 3, "three derivations for Alice");
    assert!(alice.derivations.iter().all(|m| m.len() == 4));
    assert_eq!(
        alice.lineage().len(),
        9,
        "Lineage(D, q_inf, Alice) has 9 facts"
    );
}

#[test]
fn example_2_2_exact_shapley_values() {
    let db = figure1_db();
    let q = parse_query(Q_INF).unwrap();
    let res = evaluate(&db, &q).unwrap();
    let alice = res.tuple(&[Value::from("Alice")]).unwrap();
    let scores = shapley_values(&Dnf::of_tuple(alice));

    let fact_of = |table: &str, key: &str| -> FactId {
        db.decoded_rows(table)
            .find(|r| r.values[0].as_str() == Some(key))
            .unwrap()
            .fact
    };
    let c1 = scores[&fact_of("companies", "Universal")];
    let c2 = scores[&fact_of("companies", "Warner")];
    assert!((c1 - 10.0 / 63.0).abs() < 1e-9, "Shapley(c1) = {c1}");
    assert!((c2 - 19.0 / 252.0).abs() < 1e-9, "Shapley(c2) = {c2}");
    // Efficiency over the lineage.
    let total: f64 = scores.values().sum();
    assert!((total - 1.0).abs() < 1e-9);
    // The brute-force oracle and the sampling estimator concur.
    let brute = ls_shapley::shapley_values_bruteforce(&Dnf::of_tuple(alice));
    for (f, v) in &scores {
        assert!((brute[f] - v).abs() < 1e-9);
    }
}

#[test]
fn example_2_3_syntax_similarity() {
    let q_inf = parse_query(Q_INF).unwrap();
    let q_1 = parse_query(Q_1).unwrap();
    let sim = syntax_similarity(&q_inf, &q_1);
    assert!(
        (sim - 5.0 / 8.0).abs() < 1e-12,
        "sim_s(q_inf, q1) = {sim}, want 5/8"
    );
}

#[test]
fn example_2_4_witness_similarity() {
    let db = figure1_db();
    let q_inf = parse_query(Q_INF).unwrap();
    let q_1 = parse_query(Q_1).unwrap();
    let r_inf = evaluate(&db, &q_inf).unwrap();
    let r_1 = evaluate(&db, &q_1).unwrap();
    // Different projections ⇒ no shared witnesses.
    assert_eq!(witness_similarity(&r_inf, &r_1), 0.0);
}

#[test]
fn example_3_1_rank_similarity_sees_through_projection_swap() {
    let db = figure1_db();
    let q_inf = parse_query(Q_INF).unwrap();
    let q_3 = parse_query(Q_3).unwrap();
    let r_inf = evaluate(&db, &q_inf).unwrap();
    let r_3 = evaluate(&db, &q_3).unwrap();

    // Witness similarity is blind to the relationship…
    assert_eq!(witness_similarity(&r_inf, &r_3), 0.0);

    // …but the per-tuple fact rankings are identical (ages are a bijection
    // of actor names here), so rank-based similarity is perfect.
    let scores = |r: &learnshapley::relational::QueryResult| -> Vec<FactScores> {
        r.tuples
            .iter()
            .map(|t| shapley_values(&Dnf::of_tuple(t)))
            .collect()
    };
    let sim = rank_based_similarity(&scores(&r_inf), &scores(&r_3), &RankSimOptions::default());
    assert!(
        (sim - 1.0).abs() < 1e-9,
        "sim_r(q_inf, q3) = {sim}, want 1.0"
    );

    // And it is far above the similarity to an unrelated query.
    let q_other =
        parse_query("SELECT DISTINCT movies.title FROM movies WHERE movies.year = 2006").unwrap();
    let r_other = evaluate(&db, &q_other).unwrap();
    let sim_other = rank_based_similarity(
        &scores(&r_inf),
        &scores(&r_other),
        &RankSimOptions::default(),
    );
    assert!(sim > sim_other);
}

#[test]
fn cnf_proxy_preserves_headline_comparison() {
    // §6: the inexact CNF Proxy should still rank c1 above c2 for Alice.
    let db = figure1_db();
    let q = parse_query(Q_INF).unwrap();
    let res = evaluate(&db, &q).unwrap();
    let alice = res.tuple(&[Value::from("Alice")]).unwrap();
    let proxy = cnf_proxy_scores(&Dnf::of_tuple(alice));
    let fact_of = |key: &str| -> FactId {
        db.decoded_rows("companies")
            .find(|r| r.values[0].as_str() == Some(key))
            .unwrap()
            .fact
    };
    assert!(proxy[&fact_of("Universal")] > proxy[&fact_of("Warner")]);
}
